"""Gradient-descent optimizers operating on layer ``params``/``grads`` dicts.

Optimizers keep per-parameter state keyed by ``(layer_name, param_name)``
so the same instance can drive a whole model discovered by recursive layer
traversal.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer.  ``step`` consumes a list of layers post-backward."""

    def __init__(self, learning_rate: float = 0.01):
        self.learning_rate = learning_rate

    def step(self, layers) -> None:
        for layer in layers:
            if not layer.trainable:
                continue
            for key, param in layer.params.items():
                grad = layer.grads[key]
                self._update((layer.name, key), param, grad)

    def _update(self, state_key, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9):
        super().__init__(learning_rate)
        self.momentum = momentum
        self._velocity: dict = {}

    def _update(self, state_key, param, grad):
        velocity = self._velocity.get(state_key)
        if velocity is None:
            velocity = np.zeros_like(param)
            self._velocity[state_key] = velocity
        velocity *= self.momentum
        velocity -= self.learning_rate * grad
        param += velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the usual choice for training BNN latent weights."""

    def __init__(self, learning_rate: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8):
        super().__init__(learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: dict = {}
        self._v: dict = {}
        self._t: dict = {}

    def _update(self, state_key, param, grad):
        m = self._m.setdefault(state_key, np.zeros_like(param))
        v = self._v.setdefault(state_key, np.zeros_like(param))
        t = self._t.get(state_key, 0) + 1
        self._t[state_key] = t
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad * grad
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
