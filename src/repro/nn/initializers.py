"""Weight initializers.

Each initializer is a callable ``(shape, rng) -> ndarray`` so layers stay
agnostic of the scheme and experiments stay reproducible by threading a
seeded :class:`numpy.random.Generator` through construction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "zeros", "ones", "get"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # dense: (in, out)
        return shape[0], shape[1]
    if len(shape) == 4:  # conv: (kh, kw, c_in, c_out)
        receptive = shape[0] * shape[1]
        return receptive * shape[2], receptive * shape[3]
    size = int(np.prod(shape))
    return size, size


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform — Larq's default kernel initializer."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal initializer, appropriate before ReLU non-linearities."""
    fan_in, _ = _fan_in_out(shape)
    return (rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)).astype(np.float32)


def zeros(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


_REGISTRY = {
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "zeros": zeros,
    "ones": ones,
}


def get(name_or_fn):
    """Resolve an initializer by name, passing callables through."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _REGISTRY[name_or_fn]
    except KeyError:
        raise ValueError(
            f"unknown initializer {name_or_fn!r}; "
            f"known: {sorted(_REGISTRY)}") from None
