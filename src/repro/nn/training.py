"""Minimal training loop for the numpy engine.

BNN training follows the latent-weight scheme: full-precision weights are
updated by the optimizer while the forward pass binarizes them through the
straight-through estimator implemented in :mod:`repro.binary.quantizers`.
The loop itself is oblivious to binarization — it only needs forward,
loss gradient, backward, optimizer step.
"""

from __future__ import annotations

import numpy as np

from . import losses
from .model import Sequential
from .optimizers import Adam, Optimizer

__all__ = ["Trainer", "TrainingHistory"]


class TrainingHistory:
    """Per-epoch metrics recorded by :class:`Trainer.fit`."""

    def __init__(self):
        self.train_loss: list[float] = []
        self.train_accuracy: list[float] = []
        self.val_accuracy: list[float] = []

    def __repr__(self):
        last_loss = self.train_loss[-1] if self.train_loss else None
        last_val = self.val_accuracy[-1] if self.val_accuracy else None
        return f"<TrainingHistory epochs={len(self.train_loss)} loss={last_loss} val={last_val}>"


class Trainer:
    """Mini-batch trainer with shuffling and optional validation tracking."""

    def __init__(self, optimizer: Optimizer | None = None, loss=losses.softmax_cross_entropy,
                 seed: int = 0):
        self.optimizer = optimizer if optimizer is not None else Adam(1e-3)
        self.loss = loss
        self.rng = np.random.default_rng(seed)

    def fit(self, model: Sequential, x: np.ndarray, y: np.ndarray,
            epochs: int = 5, batch_size: int = 64,
            x_val: np.ndarray | None = None, y_val: np.ndarray | None = None,
            verbose: bool = False) -> TrainingHistory:
        """Train ``model`` in place and return the metric history."""
        history = TrainingHistory()
        layers = model.all_layers()
        for epoch in range(epochs):
            order = self.rng.permutation(len(x))
            epoch_loss = 0.0
            correct = 0
            for start in range(0, len(x), batch_size):
                batch = order[start:start + batch_size]
                xb, yb = x[batch], y[batch]
                logits = model.forward(xb, training=True)
                loss_value, grad = self.loss(logits, yb)
                model.backward(grad)
                self.optimizer.step(layers)
                epoch_loss += loss_value * len(batch)
                correct += int((logits.argmax(axis=-1) == yb).sum())
            history.train_loss.append(epoch_loss / len(x))
            history.train_accuracy.append(correct / len(x))
            if x_val is not None:
                history.val_accuracy.append(model.evaluate(x_val, y_val))
            if verbose:
                val = f" val_acc={history.val_accuracy[-1]:.4f}" if x_val is not None else ""
                print(f"epoch {epoch + 1}/{epochs} "
                      f"loss={history.train_loss[-1]:.4f} "
                      f"acc={history.train_accuracy[-1]:.4f}{val}")
        return history
