"""Neural-network layers for the numpy engine.

The engine mirrors the small slice of Keras that the paper's stack relies
on: layers are stateful objects built lazily on the first forward pass,
expose ``params`` / ``grads`` dictionaries for the optimizers, and cache
whatever the backward pass needs.  Composite layers (residual blocks etc.)
override :meth:`Layer.sub_layers` so models can discover every parameter by
recursive traversal.
"""

from __future__ import annotations

import numpy as np

from . import initializers, ops

__all__ = [
    "Layer",
    "Conv2D",
    "Dense",
    "BatchNorm",
    "ReLU",
    "Sign",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Flatten",
    "ChannelScale",
]


class Layer:
    """Base class for all layers.

    Sub-classes implement :meth:`build` (parameter creation from the input
    shape), :meth:`forward` and :meth:`backward`.  ``params`` and ``grads``
    are dictionaries keyed by parameter name; optimizers update them in
    place.
    """

    _COUNTER: dict[str, int] = {}

    def __init__(self, name: str | None = None):
        if name is None:
            base = type(self).__name__.lower()
            index = Layer._COUNTER.get(base, 0)
            Layer._COUNTER[base] = index + 1
            name = f"{base}_{index}"
        self.name = name
        self.built = False
        self.trainable = True
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    # -- lifecycle -----------------------------------------------------
    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        """Create parameters.  ``input_shape`` excludes the batch axis."""
        self.built = True

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape (excluding batch) produced for the given input shape."""
        return input_shape

    def sub_layers(self) -> list["Layer"]:
        """Child layers of composite layers (empty for leaves)."""
        return []

    # -- computation ---------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def num_params(self) -> int:
        own = sum(int(p.size) for p in self.params.values())
        return own + sum(child.num_params() for child in self.sub_layers())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Conv2D(Layer):
    """2-D convolution over NHWC tensors with a ``(kh, kw, c_in, c_out)`` kernel."""

    def __init__(self, filters: int, kernel_size: int, stride: int = 1,
                 padding: str = "valid", use_bias: bool = True,
                 kernel_initializer="glorot_uniform", name: str | None = None):
        super().__init__(name)
        self.filters = filters
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.use_bias = use_bias
        self.kernel_initializer = initializers.get(kernel_initializer)
        self._cache: tuple | None = None

    def build(self, input_shape, rng):
        _, _, c_in = input_shape
        shape = (self.kernel_size, self.kernel_size, c_in, self.filters)
        self.params["kernel"] = self.kernel_initializer(shape, rng)
        self.grads["kernel"] = np.zeros_like(self.params["kernel"])
        if self.use_bias:
            self.params["bias"] = np.zeros(self.filters, dtype=np.float32)
            self.grads["bias"] = np.zeros_like(self.params["bias"])
        super().build(input_shape, rng)

    def compute_output_shape(self, input_shape):
        h, w, _ = input_shape
        k, s = self.kernel_size, self.stride
        if self.padding == "same":
            oh, ow = -(-h // s), -(-w // s)
        else:
            oh = ops.conv_output_size(h, k, s, 0)
            ow = ops.conv_output_size(w, k, s, 0)
        return (oh, ow, self.filters)

    def forward(self, x, training=False):
        out = ops.conv2d(x, self.params["kernel"], self.stride, self.padding)
        if self.use_bias:
            out = out + self.params["bias"]
        if training:
            self._cache = (x,)
        return out

    def backward(self, dout):
        (x,) = self._cache
        dx, dkernel = ops.conv2d_backward(
            dout, x, self.params["kernel"], self.stride, self.padding)
        self.grads["kernel"][...] = dkernel
        if self.use_bias:
            self.grads["bias"][...] = dout.sum(axis=(0, 1, 2))
        return dx


class Dense(Layer):
    """Fully connected layer over ``(batch, features)`` tensors."""

    def __init__(self, units: int, use_bias: bool = True,
                 kernel_initializer="glorot_uniform", name: str | None = None):
        super().__init__(name)
        self.units = units
        self.use_bias = use_bias
        self.kernel_initializer = initializers.get(kernel_initializer)
        self._cache: tuple | None = None

    def build(self, input_shape, rng):
        (features,) = input_shape
        self.params["kernel"] = self.kernel_initializer((features, self.units), rng)
        self.grads["kernel"] = np.zeros_like(self.params["kernel"])
        if self.use_bias:
            self.params["bias"] = np.zeros(self.units, dtype=np.float32)
            self.grads["bias"] = np.zeros_like(self.params["bias"])
        super().build(input_shape, rng)

    def compute_output_shape(self, input_shape):
        return (self.units,)

    def forward(self, x, training=False):
        out = x @ self.params["kernel"]
        if self.use_bias:
            out = out + self.params["bias"]
        if training:
            self._cache = (x,)
        return out

    def backward(self, dout):
        (x,) = self._cache
        self.grads["kernel"][...] = x.T @ dout
        if self.use_bias:
            self.grads["bias"][...] = dout.sum(axis=0)
        return dout @ self.params["kernel"].T


class BatchNorm(Layer):
    """Batch normalization over the channel (last) axis.

    Works on both NHWC and NC tensors.  In the LIM mapping this is one of
    the non-binary operations the paper keeps in CMOS.
    """

    def __init__(self, momentum: float = 0.9, epsilon: float = 1e-5,
                 name: str | None = None):
        super().__init__(name)
        self.momentum = momentum
        self.epsilon = epsilon
        self._cache: tuple | None = None

    def build(self, input_shape, rng):
        channels = input_shape[-1]
        self.params["gamma"] = np.ones(channels, dtype=np.float32)
        self.params["beta"] = np.zeros(channels, dtype=np.float32)
        self.grads["gamma"] = np.zeros_like(self.params["gamma"])
        self.grads["beta"] = np.zeros_like(self.params["beta"])
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        super().build(input_shape, rng)

    def _axes(self, x: np.ndarray) -> tuple[int, ...]:
        return tuple(range(x.ndim - 1))

    def forward(self, x, training=False):
        axes = self._axes(x)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.running_mean = m * self.running_mean + (1 - m) * mean
            self.running_var = m * self.running_var + (1 - m) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        x_hat = (x - mean) * inv_std
        out = self.params["gamma"] * x_hat + self.params["beta"]
        if training:
            self._cache = (x_hat, inv_std)
        return out

    def backward(self, dout):
        x_hat, inv_std = self._cache
        axes = self._axes(dout)
        self.grads["gamma"][...] = (dout * x_hat).sum(axis=axes)
        self.grads["beta"][...] = dout.sum(axis=axes)
        # dx = gamma/std * (dout - mean(dout) - x_hat * mean(dout * x_hat))
        dmean = dout.mean(axis=axes)
        dproj = (dout * x_hat).mean(axis=axes)
        return self.params["gamma"] * inv_std * (dout - dmean - x_hat * dproj)


class ReLU(Layer):
    def __init__(self, name: str | None = None):
        super().__init__(name)
        self._mask: np.ndarray | None = None

    def forward(self, x, training=False):
        if training:
            self._mask = x > 0
            return x * self._mask
        return np.maximum(x, 0)

    def backward(self, dout):
        return dout * self._mask


class Sign(Layer):
    """Binarizing sign activation with a straight-through estimator.

    Forward maps to the bipolar binary domain {-1, +1} (``sign(0) = +1``,
    the Larq ``ste_sign`` convention).  Backward passes gradients through
    where ``|x| <= 1`` (hard-tanh STE).
    """

    def __init__(self, name: str | None = None):
        super().__init__(name)
        self._cache: np.ndarray | None = None

    def forward(self, x, training=False):
        if training:
            self._cache = x
        return np.where(x >= 0, 1.0, -1.0).astype(np.float32)

    def backward(self, dout):
        return dout * (np.abs(self._cache) <= 1.0)


class MaxPool2D(Layer):
    def __init__(self, size: int = 2, name: str | None = None):
        super().__init__(name)
        self.size = size
        self._mask: np.ndarray | None = None

    def compute_output_shape(self, input_shape):
        h, w, c = input_shape
        return (h // self.size, w // self.size, c)

    def forward(self, x, training=False):
        out, mask = ops.maxpool2d(x, self.size, with_mask=training)
        if training:
            self._mask = mask
        return out

    def backward(self, dout):
        return ops.maxpool2d_backward(dout, self._mask, self.size)


class AvgPool2D(Layer):
    def __init__(self, size: int = 2, name: str | None = None):
        super().__init__(name)
        self.size = size

    def compute_output_shape(self, input_shape):
        h, w, c = input_shape
        return (h // self.size, w // self.size, c)

    def forward(self, x, training=False):
        return ops.avgpool2d(x, self.size)

    def backward(self, dout):
        return ops.avgpool2d_backward(dout, self.size)


class GlobalAvgPool2D(Layer):
    def __init__(self, name: str | None = None):
        super().__init__(name)
        self._spatial: tuple[int, int] | None = None

    def compute_output_shape(self, input_shape):
        return (input_shape[-1],)

    def forward(self, x, training=False):
        self._spatial = (x.shape[1], x.shape[2])
        return x.mean(axis=(1, 2))

    def backward(self, dout):
        h, w = self._spatial
        spread = dout[:, None, None, :] / (h * w)
        return np.broadcast_to(spread, (dout.shape[0], h, w, dout.shape[1])).copy()


class Flatten(Layer):
    def __init__(self, name: str | None = None):
        super().__init__(name)
        self._shape: tuple[int, ...] | None = None

    def compute_output_shape(self, input_shape):
        return (int(np.prod(input_shape)),)

    def forward(self, x, training=False):
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout):
        return dout.reshape(self._shape)


class ChannelScale(Layer):
    """Learnable per-channel multiplicative scale.

    Used by the Real-to-Binary architecture family, which re-scales binary
    convolution outputs with real-valued per-channel gains.
    """

    def __init__(self, name: str | None = None):
        super().__init__(name)
        self._cache: np.ndarray | None = None

    def build(self, input_shape, rng):
        channels = input_shape[-1]
        self.params["scale"] = np.ones(channels, dtype=np.float32)
        self.grads["scale"] = np.zeros_like(self.params["scale"])
        super().build(input_shape, rng)

    def forward(self, x, training=False):
        if training:
            self._cache = x
        return x * self.params["scale"]

    def backward(self, dout):
        axes = tuple(range(dout.ndim - 1))
        self.grads["scale"][...] = (dout * self._cache).sum(axis=axes)
        return dout * self.params["scale"]
