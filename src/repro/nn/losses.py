"""Loss functions.

Each loss returns ``(value, gradient_wrt_logits)`` so the training loop can
seed backpropagation without a separate backward call.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "softmax_cross_entropy", "hinge_loss"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray
                          ) -> tuple[float, np.ndarray]:
    """Mean cross-entropy of integer ``labels`` against ``logits``.

    Returns the scalar loss and its gradient w.r.t. the logits.
    """
    n = logits.shape[0]
    probs = softmax(logits)
    clipped = np.clip(probs[np.arange(n), labels], 1e-12, None)
    loss = float(-np.log(clipped).mean())
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def hinge_loss(logits: np.ndarray, labels: np.ndarray,
               margin: float = 1.0) -> tuple[float, np.ndarray]:
    """Multi-class hinge loss (Crammer-Singer), occasionally used for BNNs."""
    n = logits.shape[0]
    correct = logits[np.arange(n), labels][:, None]
    margins = np.maximum(0.0, logits - correct + margin)
    margins[np.arange(n), labels] = 0.0
    loss = float(margins.sum() / n)
    grad = (margins > 0).astype(logits.dtype)
    grad[np.arange(n), labels] = -grad.sum(axis=1)
    return loss, grad / n
