"""Dataflow analyses over :mod:`repro.lint.cfg` graphs.

Three analyses, all classic forward fixpoints at statement granularity:

* :func:`reaching_definitions` — for every node, which definition sites
  of each name can reach it (``name -> {node indices}``); the substrate
  for use-def chains.
* :func:`use_def` — for every ``Name`` *load* in a node's executed
  code, the definition sites that reach it.
* :func:`propagate_taint` — which names are (transitively) derived from
  a seed set of parameters or from expressions a predicate marks as
  sources.  Assignments propagate taint through their value expression;
  assigning a clean value *kills* the taint (strong update — this is
  what makes the rules flow-sensitive rather than grep-shaped).

All analyses are may-analyses over the over-approximated CFG, so a name
reported clean is clean on every feasible path, and rules that flag
"tainted value reaches X" only fire when some path actually carries it.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator

from .cfg import CFG, CFGNode, shallow_walk

__all__ = ["assigned_names", "name_loads", "propagate_taint",
           "reaching_definitions", "use_def"]

#: entry-node pseudo definition site (parameters, enclosing scope)
ENTRY_DEF = -1


def _target_names(target: ast.expr) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples/lists/starred
    unpacked; attribute/subscript targets bind no local name)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _bindings(node: CFGNode) -> Iterator[tuple[str, ast.expr | None]]:
    """``(name, value_expr)`` pairs bound when ``node`` executes.

    ``value_expr`` is ``None`` for bindings with no data flow worth
    tracking (``except E as name``, ``del``).
    """
    for code in node.code:
        for item in shallow_walk(code):
            if isinstance(item, ast.Assign):
                for target in item.targets:
                    for name in _target_names(target):
                        yield name, item.value
            elif isinstance(item, ast.AnnAssign) and item.value is not None:
                for name in _target_names(item.target):
                    yield name, item.value
            elif isinstance(item, ast.AugAssign):
                if isinstance(item.target, ast.Name):
                    # reads the old value too: x += e depends on x and e
                    yield item.target.id, ast.BoolOp(
                        op=ast.Or(),
                        values=[ast.Name(id=item.target.id, ctx=ast.Load()),
                                item.value])
            elif isinstance(item, ast.NamedExpr):
                for name in _target_names(item.target):
                    yield name, item.value
            elif isinstance(item, ast.Delete):
                for target in item.targets:
                    for name in _target_names(target):
                        yield name, None
    stmt = node.stmt
    if node.kind == "iter" and isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in _target_names(stmt.target):
            yield name, stmt.iter
    elif node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name in _target_names(item.optional_vars):
                    yield name, item.context_expr
    elif node.kind == "handler" and isinstance(stmt, ast.ExceptHandler):
        if stmt.name is not None:
            yield stmt.name, None


def assigned_names(node: CFGNode) -> set[str]:
    """Every local name ``node`` (re)binds."""
    return {name for name, _ in _bindings(node)}


def name_loads(node: CFGNode) -> set[str]:
    """Every plain name read by ``node``'s executed code."""
    return {leaf.id for code in node.code for leaf in shallow_walk(code)
            if isinstance(leaf, ast.Name)
            and isinstance(leaf.ctx, ast.Load)}


def reaching_definitions(cfg: CFG, params: frozenset[str] = frozenset()
                         ) -> list[dict[str, set[int]]]:
    """``result[n][name]`` = definition sites of ``name`` that can reach
    node ``n``.  ``params`` (and anything else live at entry) are defined
    at the pseudo-site :data:`ENTRY_DEF`."""
    gen: list[set[str]] = [assigned_names(node) for node in cfg.nodes]
    in_sets: list[dict[str, set[int]]] = [{} for _ in cfg.nodes]
    out_sets: list[dict[str, set[int]]] = [{} for _ in cfg.nodes]
    out_sets[cfg.entry] = {name: {ENTRY_DEF} for name in params}
    preds = cfg.preds()
    worklist = list(range(len(cfg.nodes)))
    while worklist:
        index = worklist.pop(0)
        merged: dict[str, set[int]] = {}
        for pred in preds[index]:
            for name, sites in out_sets[pred].items():
                merged.setdefault(name, set()).update(sites)
        in_sets[index] = merged
        new_out = {name: set(sites) for name, sites in merged.items()}
        if index == cfg.entry:
            for name in params:
                new_out.setdefault(name, set()).add(ENTRY_DEF)
        for name in gen[index]:
            new_out[name] = {index}
        if new_out != out_sets[index]:
            out_sets[index] = new_out
            worklist.extend(cfg.nodes[index].successors())
    return in_sets


def use_def(cfg: CFG, params: frozenset[str] = frozenset()
            ) -> dict[tuple[int, str], set[int]]:
    """Use-def chains: ``(node, name) -> definition sites`` for every
    name load in the graph."""
    reaching = reaching_definitions(cfg, params)
    chains: dict[tuple[int, str], set[int]] = {}
    for node in cfg.nodes:
        for name in name_loads(node):
            chains[(node.index, name)] = set(
                reaching[node.index].get(name, set()))
    return chains


def expr_is_tainted(expr: ast.AST, tainted: frozenset[str],
                    is_source: Callable[[ast.AST], bool] | None = None
                    ) -> bool:
    """Whether ``expr`` reads any tainted name or contains a source."""
    for leaf in shallow_walk(expr):
        if (isinstance(leaf, ast.Name) and isinstance(leaf.ctx, ast.Load)
                and leaf.id in tainted):
            return True
        if is_source is not None and is_source(leaf):
            return True
    return False


def propagate_taint(cfg: CFG, seeds: frozenset[str],
                    is_source: Callable[[ast.AST], bool] | None = None
                    ) -> list[frozenset[str]]:
    """Per-node IN sets of tainted names.

    ``seeds`` are tainted at entry (parameters); ``is_source`` marks
    expressions that *create* taint (e.g. a ``Tracer(...)`` call).  An
    assignment whose value is tainted taints its targets; one whose
    value is clean kills them.
    """
    in_sets: list[frozenset[str]] = [frozenset() for _ in cfg.nodes]
    out_sets: list[frozenset[str]] = [frozenset() for _ in cfg.nodes]
    out_sets[cfg.entry] = frozenset(seeds)
    preds = cfg.preds()
    worklist = list(range(len(cfg.nodes)))
    while worklist:
        index = worklist.pop(0)
        node = cfg.nodes[index]
        merged: frozenset[str] = frozenset()
        for pred in preds[index]:
            merged |= out_sets[pred]
        if index == cfg.entry:
            merged |= seeds
        in_sets[index] = merged
        state = set(merged)
        for name, value in _bindings(node):
            if value is not None and expr_is_tainted(
                    value, frozenset(state), is_source):
                state.add(name)
            else:
                state.discard(name)
        new_out = frozenset(state)
        if new_out != out_sets[index]:
            out_sets[index] = new_out
            worklist.extend(node.successors())
    return in_sets
