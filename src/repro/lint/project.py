"""Parsed source model the rules run against.

A :class:`Project` is a set of parsed :class:`Module` objects rooted at
one directory (the repository root).  Each module carries its AST, a
parent map (``ast`` has no uplinks), the module's import-alias table for
resolving dotted call targets to canonical names (``np.random.rand`` →
``numpy.random.rand``), and the per-line ``# repro: allow[rule-id]``
suppression table.

Loading never imports the scanned code — everything is :func:`ast.parse`
on file text, so the checker is safe to run on broken or
dependency-missing trees.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["LintUsageError", "Module", "ParseFailure", "Project",
           "load_project"]

#: ``# repro: allow[rule-a]`` / ``# repro: allow[rule-a, rule-b]`` /
#: ``# repro: allow[*]``
_ALLOW = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s*-]+)\]")


class LintUsageError(ValueError):
    """A problem with the invocation itself (missing path, unparsable
    file, malformed baseline) — exit code 2, like every other CLI
    validation error."""


@dataclass
class Module:
    """One parsed source file plus the lookup structures rules need."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    #: line number -> rule ids allowed on that line ("*" allows all)
    allow: dict[int, frozenset[str]] = field(default_factory=dict)
    #: child AST node -> parent AST node (module-wide)
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: local name -> canonical dotted module/attribute path
    aliases: dict[str, str] = field(default_factory=dict)

    def suppressed(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` is allowed at ``line`` (same-line comment
        or a comment-only line directly above)."""
        for ids in (self.allow.get(line), self.allow.get(-line)):
            if ids is not None and (rule_id in ids or "*" in ids):
                return True
        return False

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a ``Name``/``Attribute`` chain.

        Returns ``None`` for anything whose base is not a plain name
        with a known import alias — a local variable that merely shadows
        a module name never resolves, so rules keyed on canonical names
        cannot false-positive on it.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = current.id
        canonical = self.aliases.get(base)
        if canonical is None:
            return None
        parts.append(canonical)
        return ".".join(reversed(parts))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module node."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing(self, node: ast.AST,
                  kinds: tuple[type, ...]) -> ast.AST | None:
        """The nearest ancestor of one of ``kinds``, or ``None``."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, kinds):
                return ancestor
        return None


@dataclass(frozen=True)
class ParseFailure:
    """A checked file the parser rejected — reported, never skipped."""

    relpath: str
    line: int
    message: str


@dataclass
class Project:
    """Every module of one lint run, addressable by relative path."""

    root: Path
    modules: list[Module] = field(default_factory=list)
    #: files that failed to parse; the runner turns these into findings
    failures: list[ParseFailure] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_relpath = {module.relpath: module
                            for module in self.modules}

    def get(self, relpath: str) -> Module | None:
        return self._by_relpath.get(relpath)


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Import-alias table, including imports nested inside functions
    (the engine imports ``shared_memory`` lazily)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.partition(".")[0]
                target = name.name if name.asname else local
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _collect_allows(source: str) -> dict[int, frozenset[str]]:
    """Per-line suppression table.

    A suppression on a code line covers that line; a suppression on a
    comment-only line covers the *next* line (stored negated so
    :meth:`Module.suppressed` can distinguish without re-reading the
    source).
    """
    allow: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW.search(text)
        if match is None:
            continue
        ids = frozenset(part.strip() for part in match.group(1).split(",")
                        if part.strip())
        if text.lstrip().startswith("#"):
            allow[-(lineno + 1)] = ids
        else:
            allow[lineno] = ids
    return allow


def _build_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def parse_module(path: Path, root: Path) -> Module:
    """Parse one file into a :class:`Module` (no code execution).

    Raises :class:`SyntaxError` on an unparsable file —
    :func:`load_project` converts that into a :class:`ParseFailure`
    so a broken file is a reported fact of the run, never a silent
    skip.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return Module(path=path, relpath=_relpath(path, root), source=source,
                  tree=tree, allow=_collect_allows(source),
                  parents=_build_parents(tree),
                  aliases=_collect_aliases(tree))


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py")
                              if "__pycache__" not in p.parts)
        elif path.is_file():
            yield path
        else:
            raise LintUsageError(f"no such file or directory: {path}")


def load_project(paths: Sequence[Path], root: Path) -> Project:
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`
    rooted at ``root`` (paths are deduplicated, order-stable)."""
    seen: set[Path] = set()
    modules: list[Module] = []
    failures: list[ParseFailure] = []
    for path in _iter_python_files(paths):
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        try:
            modules.append(parse_module(path, root))
        except SyntaxError as error:
            failures.append(ParseFailure(
                relpath=_relpath(path, root),
                line=error.lineno or 1,
                message=error.msg or "invalid syntax"))
    return Project(root=root, modules=modules, failures=failures)
