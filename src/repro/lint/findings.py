"""The result vocabulary of the lint pass: findings and the rule protocol.

A :class:`Finding` is one violation of one rule at one source location;
rules yield them, the runner (:mod:`repro.lint.runner`) filters them
through inline suppressions and the committed baseline, and whatever
survives fails the build.  Everything here is deliberately free of
numpy/engine imports so the checker can parse the whole tree without
executing any of it.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:
    from .project import Project

__all__ = ["Finding", "Rule"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the file's POSIX path relative to the lint root (the
    repository root in CI), so findings are stable across checkouts;
    ``line`` is 1-based.  ``waivable`` findings can be grandfathered by
    a baseline entry; cross-module contract violations (event
    exhaustiveness) set it ``False`` because a baseline would defeat the
    rule's whole purpose.
    """

    path: str
    line: int
    rule: str
    message: str
    waivable: bool = field(default=True, compare=False)

    def render(self) -> str:
        """The one-line ``path:line: [rule] message`` report form."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}


@runtime_checkable
class Rule(Protocol):
    """What the runner requires of a rule.

    ``rule_id`` is the stable kebab-case identifier used in reports,
    ``# repro: allow[rule-id]`` suppressions, and baseline entries;
    ``summary`` is the one-liner ``repro lint --list-rules`` prints.
    :meth:`check` receives the whole parsed :class:`~repro.lint.project.
    Project` — most rules iterate its modules independently, while
    cross-module rules (event exhaustiveness) correlate several files.
    """

    rule_id: str
    summary: str

    def check(self, project: "Project") -> Iterable[Finding]:
        """Yield every violation found in ``project``."""
        ...
