"""Intraprocedural control-flow graphs over :mod:`ast` statements.

The flow-sensitive rules (:mod:`repro.lint.flow`, the ``*-path``/
``*-taint`` rules in :mod:`repro.lint.rules`) need to reason about
*paths*, not syntax: "does every path from this ``SharedMemory`` create
reach a release, including the path where the very next call raises?"
This module builds the graph those questions are asked on.

Design points:

* **One node per executed unit.**  Simple statements get one node each;
  compound statements get a *header* node carrying only the expression
  that executes at branch time (an ``if``/``while`` test, a ``for``
  iterable, ``with`` items, an ``except`` clause binding).  Statement
  granularity keeps dominance and reachability exact without a separate
  "position inside basic block" coordinate — a basic block here is just
  a maximal straight-line chain of nodes.
* **Exceptional edges are explicit.**  Every node that can plausibly
  raise (it evaluates a call, attribute access, subscript, operator, or
  ``assert``) carries an edge to the innermost exception target: the
  enclosing ``try``'s handler-dispatch node, the enclosing ``finally``,
  or the function exit.  ``raise`` jumps there unconditionally;
  ``return`` routes through enclosing ``finally`` blocks; a ``finally``
  re-propagates to the next target outward.  The graph therefore
  over-approximates real control flow — every feasible path exists in
  it, which is the soundness direction path rules need.
* **No scope descent.**  Nested ``def``/``lambda``/``class`` bodies are
  opaque single nodes; each function is its own CFG
  (:func:`iter_scopes` enumerates them, module top-level included).

Everything is pure AST analysis — nothing under check is imported.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

__all__ = ["CFG", "CFGNode", "FUNCTION_NODES", "Scope", "build_cfg",
           "iter_scopes", "shallow_walk"]

FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: expression shapes that can plausibly raise at runtime
_RAISING = (ast.Call, ast.Attribute, ast.Subscript, ast.BinOp, ast.UnaryOp,
            ast.Compare, ast.Await, ast.Starred, ast.FormattedValue)


@dataclass
class CFGNode:
    """One executed unit of the graph.

    ``kind`` is ``"entry"``/``"exit"`` for the virtual endpoints,
    ``"stmt"`` for a simple statement, ``"test"``/``"iter"``/``"with"``
    for compound-statement headers, ``"handler"`` for an ``except``
    clause, and ``"dispatch"``/``"finally"`` for the virtual nodes of a
    ``try``.  ``code`` holds exactly the AST that executes *at this
    node* (for headers: the test/iterable/items, never the body).
    """

    index: int
    kind: str
    stmt: ast.AST | None = None
    code: tuple[ast.AST, ...] = ()
    succ: set[int] = field(default_factory=set)
    #: taken only when this node's evaluation raises
    exc: set[int] = field(default_factory=set)

    def successors(self, *, exceptional: bool = True) -> set[int]:
        return self.succ | self.exc if exceptional else set(self.succ)


@dataclass
class CFG:
    """The control-flow graph of one scope (function body or module)."""

    nodes: list[CFGNode]
    entry: int
    exit: int

    def __iter__(self) -> Iterator[CFGNode]:
        return iter(self.nodes)

    def preds(self) -> list[set[int]]:
        """Predecessor sets (normal and exceptional edges merged)."""
        preds: list[set[int]] = [set() for _ in self.nodes]
        for node in self.nodes:
            for succ in node.successors():
                preds[succ].add(node.index)
        return preds

    def reachable_without(self, start: int, stop: frozenset[int], *,
                          skip_exceptional_from: frozenset[int] = frozenset()
                          ) -> set[int]:
        """Nodes reachable from ``start`` along paths that never pass
        through a ``stop`` node.

        ``stop`` nodes are reached but not expanded — the shape leak
        rules need: "can the exit be reached without executing a
        release?".  Exceptional edges are followed except out of nodes
        in ``skip_exceptional_from`` (a create call that itself raises
        never produced the resource).
        """
        seen: set[int] = set()
        frontier = [start]
        while frontier:
            index = frontier.pop()
            if index in seen:
                continue
            seen.add(index)
            if index in stop:
                continue
            node = self.nodes[index]
            targets = (node.succ if index in skip_exceptional_from
                       else node.successors())
            frontier.extend(t for t in targets if t not in seen)
        return seen

    def dominators(self) -> list[set[int]]:
        """``dom[n]`` = every node on *all* paths from entry to ``n``
        (classic iterative dataflow; exceptional edges included, so
        dominance holds over raising paths too)."""
        preds = self.preds()
        everything = set(range(len(self.nodes)))
        dom: list[set[int]] = [set(everything) for _ in self.nodes]
        dom[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for node in self.nodes:
                index = node.index
                if index == self.entry:
                    continue
                incoming = [dom[p] for p in preds[index]]
                new = (set.intersection(*incoming) if incoming else set())
                new.add(index)
                if new != dom[index]:
                    dom[index] = new
                    changed = True
        return dom


def shallow_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function, lambda, or
    class scopes — what executes *here*, not what merely gets defined."""
    yield node
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, (*FUNCTION_NODES, ast.Lambda, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(child))


def _can_raise(parts: tuple[ast.AST, ...]) -> bool:
    return any(isinstance(leaf, _RAISING)
               for part in parts for leaf in shallow_walk(part))


@dataclass
class _Ctx:
    """Where non-sequential control transfers go in the current region."""

    exc: int                       # in-flight exception target
    finallies: tuple[int, ...]     # enclosing finally entries, outermost first
    breaks: list[int] | None = None
    cont: int | None = None


class _Builder:
    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []

    def new(self, kind: str, stmt: ast.AST | None = None,
            code: tuple[ast.AST, ...] = ()) -> CFGNode:
        node = CFGNode(index=len(self.nodes), kind=kind, stmt=stmt, code=code)
        self.nodes.append(node)
        return node

    def connect(self, opens: set[int], target: int) -> None:
        for index in opens:
            self.nodes[index].succ.add(target)

    def build(self, body: list[ast.stmt]) -> CFG:
        entry = self.new("entry")
        exit_ = self.new("exit")
        ctx = _Ctx(exc=exit_.index, finallies=())
        ends = self.body(body, {entry.index}, ctx)
        self.connect(ends, exit_.index)
        return CFG(nodes=self.nodes, entry=entry.index, exit=exit_.index)

    def body(self, stmts: list[ast.stmt], opens: set[int],
             ctx: _Ctx) -> set[int]:
        for stmt in stmts:
            opens = self.stmt(stmt, opens, ctx)
        return opens

    def stmt(self, stmt: ast.stmt, opens: set[int], ctx: _Ctx) -> set[int]:
        if isinstance(stmt, ast.If):
            return self._branch(stmt, (stmt.test,), stmt.body, stmt.orelse,
                                opens, ctx, kind="test")
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, opens, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, opens, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            header = self.new("with", stmt,
                              tuple(item.context_expr for item in stmt.items)
                              + tuple(item.optional_vars
                                      for item in stmt.items
                                      if item.optional_vars is not None))
            self.connect(opens, header.index)
            header.exc.add(ctx.exc)
            return self.body(stmt.body, {header.index}, ctx)
        if isinstance(stmt, ast.Match):
            header = self.new("test", stmt, (stmt.subject,))
            self.connect(opens, header.index)
            header.exc.add(ctx.exc)
            ends: set[int] = {header.index}
            for case in stmt.cases:
                ends |= self.body(case.body, {header.index}, ctx)
            return ends
        return self._simple(stmt, opens, ctx)

    def _simple(self, stmt: ast.stmt, opens: set[int],
                ctx: _Ctx) -> set[int]:
        code: tuple[ast.AST, ...] = (stmt,)
        if isinstance(stmt, (*FUNCTION_NODES, ast.ClassDef)):
            # only decorators/defaults/bases execute at definition time
            code = tuple(stmt.decorator_list)
            if isinstance(stmt, FUNCTION_NODES):
                code += tuple(stmt.args.defaults) + tuple(
                    d for d in stmt.args.kw_defaults if d is not None)
            else:
                code += tuple(stmt.bases) + tuple(
                    kw.value for kw in stmt.keywords)
        node = self.new("stmt", stmt, code)
        self.connect(opens, node.index)
        if isinstance(stmt, ast.Return):
            if _can_raise(code):
                node.exc.add(ctx.exc)
            node.succ.add(ctx.finallies[-1] if ctx.finallies
                          else self.nodes[1].index)  # function exit
            return set()
        if isinstance(stmt, ast.Raise):
            node.succ.add(ctx.exc)
            return set()
        if isinstance(stmt, ast.Break):
            if ctx.breaks is not None:
                ctx.breaks.append(node.index)
            return set()
        if isinstance(stmt, ast.Continue):
            if ctx.cont is not None:
                node.succ.add(ctx.cont)
            return set()
        if _can_raise(code):
            node.exc.add(ctx.exc)
        return {node.index}

    def _branch(self, stmt: ast.stmt, header_code: tuple[ast.AST, ...],
                body: list[ast.stmt], orelse: list[ast.stmt],
                opens: set[int], ctx: _Ctx, *, kind: str) -> set[int]:
        header = self.new(kind, stmt, header_code)
        self.connect(opens, header.index)
        if _can_raise(header_code):
            header.exc.add(ctx.exc)
        ends = self.body(body, {header.index}, ctx)
        if orelse:
            ends |= self.body(orelse, {header.index}, ctx)
        else:
            ends.add(header.index)
        return ends

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor,
              opens: set[int], ctx: _Ctx) -> set[int]:
        if isinstance(stmt, ast.While):
            header = self.new("test", stmt, (stmt.test,))
        else:
            header = self.new("iter", stmt, (stmt.iter, stmt.target))
        self.connect(opens, header.index)
        header.exc.add(ctx.exc)
        breaks: list[int] = []
        inner = _Ctx(exc=ctx.exc, finallies=ctx.finallies, breaks=breaks,
                     cont=header.index)
        body_ends = self.body(stmt.body, {header.index}, inner)
        self.connect(body_ends, header.index)
        # the else clause runs on normal loop exit; breaks skip it
        ends = self.body(stmt.orelse, {header.index}, ctx)
        return ends | set(breaks)

    def _try(self, stmt: ast.Try, opens: set[int], ctx: _Ctx) -> set[int]:
        outer_exc = ctx.exc
        fin_entry: CFGNode | None = None
        fin_ends: set[int] = set()
        if stmt.finalbody:
            fin_entry = self.new("finally", stmt)
            after_exc = fin_entry.index
        else:
            after_exc = outer_exc
        dispatch = self.new("dispatch", stmt)
        handler_ctx = _Ctx(exc=after_exc,
                           finallies=(ctx.finallies + (fin_entry.index,)
                                      if fin_entry is not None
                                      else ctx.finallies),
                           breaks=ctx.breaks, cont=ctx.cont)
        body_ctx = _Ctx(exc=dispatch.index, finallies=handler_ctx.finallies,
                        breaks=ctx.breaks, cont=ctx.cont)
        body_ends = self.body(stmt.body, opens, body_ctx)
        orelse_ends = self.body(stmt.orelse, body_ends, handler_ctx)
        normal_ends = set(orelse_ends)
        # an exception not matched by any handler propagates outward
        dispatch.succ.add(after_exc)
        for handler in stmt.handlers:
            code = (handler.type,) if handler.type is not None else ()
            hnode = self.new("handler", handler, code)
            dispatch.succ.add(hnode.index)
            normal_ends |= self.body(handler.body, {hnode.index}, handler_ctx)
        if fin_entry is None:
            return normal_ends
        self.connect(normal_ends, fin_entry.index)
        # exceptions raised inside the finally itself propagate outward
        fin_ctx = _Ctx(exc=outer_exc, finallies=ctx.finallies,
                       breaks=ctx.breaks, cont=ctx.cont)
        fin_ends = self.body(stmt.finalbody, {fin_entry.index}, fin_ctx)
        # the finally of an in-flight exception/return re-propagates
        for index in fin_ends:
            self.nodes[index].succ.add(outer_exc)
        return fin_ends


Scope = ast.Module | ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef


def build_cfg(scope: Scope) -> CFG:
    """Build the CFG of one scope's body (function, class body at
    definition time, or module top level)."""
    return _Builder().build(scope.body)


def iter_scopes(tree: ast.Module) -> Iterator[Scope]:
    """Every CFG-bearing scope of a module: the top level, then each
    (arbitrarily nested) function and class body.  Every statement of
    the module belongs to exactly one scope — the builder treats nested
    ``def``/``class`` statements as opaque nodes."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (*FUNCTION_NODES, ast.ClassDef)):
            yield node
