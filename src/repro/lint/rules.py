"""The repo-specific invariant rules.

Each rule encodes one contract the reproduction's trustworthiness rests
on — determinism (seeded RNG flow), resource lifecycle (shared-memory
release), failure routing (no silent excepts), and the typed-event
protocol (frozen records, exhaustive rendering/relaying).  Rules are
pure AST analyses over a :class:`~repro.lint.project.Project`; none of
them import or execute the code under check.

Two families coexist here:

* **syntactic rules** walk the AST of each module directly
  (``no-global-rng``, ``no-wall-clock``, ...);
* **flow rules** reason about *paths* on the intraprocedural CFGs of
  :mod:`repro.lint.cfg` with the dataflow analyses of
  :mod:`repro.lint.flow` (``shm-leak-path``, ``rng-taint``,
  ``obs-pickle-boundary``, ``journal-order``) — a violation is a
  provable path, not a missing keyword nearby.

The catalog (rule id → contract) is documented for humans in
``docs/static-analysis.md``; the ``protocol-drift`` rule fails the
build when the two fall out of sync.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from .cfg import CFG, CFGNode, Scope, build_cfg, iter_scopes, shallow_walk
from .findings import Finding, Rule
from .flow import expr_is_tainted, propagate_taint
from .project import Module, Project

__all__ = [
    "DEFAULT_RULES",
    "EventExhaustiveness",
    "FrozenRecords",
    "JournalOrder",
    "NoGlobalRng",
    "NoSilentExcept",
    "NoUnpicklableSubmit",
    "NoWallClock",
    "ObsPickleBoundary",
    "ProtocolDrift",
    "RngTaint",
    "ShmLeakPath",
    "UnboundedQueue",
]

#: the protocol modules whose dataclasses are wire/event records
EVENTS_MODULE = "src/repro/api/events.py"
RESILIENCE_MODULE = "src/repro/core/resilience.py"
CLI_MODULE = "src/repro/cli.py"
HANDLE_MODULE = "src/repro/api/handle.py"
WIRE_MODULE = "src/repro/service/wire.py"
#: the telemetry clock — the only other legitimate monotonic reader
OBS_CLOCK_MODULE = "src/repro/obs/clock.py"
#: trace spans are protocol records too (journaled, rendered)
OBS_SPANS_MODULE = "src/repro/obs/spans.py"

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _finding(module: Module, node: ast.AST, rule_id: str, message: str, *,
             waivable: bool = True) -> Iterator[Finding]:
    """Yield one finding unless an inline suppression covers it."""
    line = getattr(node, "lineno", 1)
    if not module.suppressed(line, rule_id):
        yield Finding(path=module.relpath, line=line, rule=rule_id,
                      message=message, waivable=waivable)


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = node.args
    return {a.arg for a in
            (*args.posonlyargs, *args.args, *args.kwonlyargs)}


def _walk_own_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested function or
    lambda scopes (their parameters establish their own contracts)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, (*_FUNCTION_NODES, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(child))


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    """The ``@dataclass`` / ``@dataclass(...)`` decorator, if any."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (target.attr if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name) else None)
        if name == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False  # bare @dataclass: frozen defaults to False
    return any(kw.arg == "frozen" and isinstance(kw.value, ast.Constant)
               and kw.value.value is True for kw in decorator.keywords)


class NoGlobalRng:
    """All randomness must flow through explicitly seeded generators.

    Module-state numpy RNG (``np.random.rand`` and friends, including
    ``np.random.seed``), the stdlib ``random`` module, and argless
    ``default_rng()`` all read or mutate hidden global state, which
    breaks the bit-identical campaign contract the moment execution
    order changes (pool executors, resumed journals).
    """

    rule_id = "no-global-rng"
    summary = ("ban np.random module-state calls, stdlib random, and "
               "argless default_rng()")
    #: shared test fixtures may centralize seeding helpers
    allowed_paths = frozenset({"tests/conftest.py"})
    #: numpy.random attributes that construct explicit, seedable state
    _constructors = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    })

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if module.relpath in self.allowed_paths:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                canonical = module.resolve(node.func)
                if canonical is None:
                    continue
                if canonical.startswith("random."):
                    yield from _finding(
                        module, node, self.rule_id,
                        f"stdlib {canonical}() uses hidden global RNG "
                        "state; thread a seeded np.random.Generator "
                        "instead")
                elif canonical == "numpy.random.default_rng":
                    if not node.args and not node.keywords:
                        yield from _finding(
                            module, node, self.rule_id,
                            "argless default_rng() is entropy-seeded and "
                            "unreproducible; pass an explicit seed")
                elif (canonical.startswith("numpy.random.")
                      and canonical.rpartition(".")[2]
                      not in self._constructors):
                    tail = canonical.removeprefix("numpy.")
                    yield from _finding(
                        module, node, self.rule_id,
                        f"{tail}() uses numpy's global RNG state; use a "
                        "seeded np.random.Generator method instead")


class NoWallClock:
    """Deterministic paths must not read the wall clock.

    ``time.time``/``datetime.now`` values leak into results and make
    reruns differ; ``time.monotonic`` is allow-listed in exactly two
    places — the supervision layer (timeouts, stall watchdogs in
    ``core/resilience.py``) and the telemetry clock
    (``obs/clock.py``'s ``SystemClock``, behind the swappable
    :class:`~repro.obs.clock.Clock` abstraction so instrumented runs
    stay replayable under a ``FakeClock``).
    """

    rule_id = "no-wall-clock"
    summary = ("ban time.time/datetime.now everywhere; time.monotonic "
               "outside core/resilience.py and obs/clock.py")
    _banned = frozenset({
        "time.time", "time.time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })
    _monotonic = frozenset({"time.monotonic", "time.monotonic_ns"})
    monotonic_paths = frozenset({RESILIENCE_MODULE, OBS_CLOCK_MODULE})

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                canonical = module.resolve(node.func)
                if canonical in self._banned:
                    yield from _finding(
                        module, node, self.rule_id,
                        f"{canonical}() reads the wall clock in a "
                        "deterministic path; results must be a pure "
                        "function of seeds and inputs")
                elif (canonical in self._monotonic
                      and module.relpath not in self.monotonic_paths):
                    yield from _finding(
                        module, node, self.rule_id,
                        f"{canonical}() is reserved for the supervision "
                        "layer (core/resilience.py) and the telemetry "
                        "clock (obs/clock.py); deterministic code must "
                        "not branch on elapsed time")


def _called_name(call: ast.Call) -> str | None:
    """The bare name a call invokes (``f(...)`` -> ``f``,
    ``o.m(...)`` -> ``m``)."""
    callee = call.func
    return (callee.attr if isinstance(callee, ast.Attribute)
            else callee.id if isinstance(callee, ast.Name) else None)


def _mentions(expr: ast.AST, name: str) -> bool:
    """Whether ``expr`` reads ``name`` (shallow — nested scopes are
    their own contracts)."""
    return any(isinstance(leaf, ast.Name) and leaf.id == name
               and isinstance(leaf.ctx, ast.Load)
               for leaf in shallow_walk(expr))


def _escapes(expr: ast.AST, name: str) -> bool:
    """Whether the *object* bound to ``name`` escapes through ``expr``.

    Reading an attribute off it (``shm.name``, ``shm.buf``) derives a
    value but does not hand the block itself to anyone — only a bare
    reference counts as an ownership transfer."""
    derived = {leaf.value for leaf in ast.walk(expr)
               if isinstance(leaf, ast.Attribute)}
    return any(isinstance(leaf, ast.Name) and leaf.id == name
               and isinstance(leaf.ctx, ast.Load) and leaf not in derived
               for leaf in ast.walk(expr))


class ShmLeakPath:
    """A created shared-memory block must be released on *every* path.

    Flow-sensitive successor of the old syntactic ``shm-lifecycle``
    rule: from each ``name = SharedMemory(create=True)`` definition, it
    walks the function's CFG — exceptional edges included — and demands
    that every path to the scope exit passes a point where the block is
    released (``name.close()``/``name.unlink()``), handed to a lifecycle
    owner (``owner.append(name)`` / ``register(name)`` /
    ``_release_shared_blocks([name])``), stored (``self.x = name``,
    ``d[k] = name``), or returned to the caller.  A path where the very
    next call raises and skips the release is exactly the leak this
    reports — "there is a ``try/finally`` nearby" is no longer proof.

    A conditional release guarded on the tracked name itself
    (``if shm is not None: shm.close()``) counts as releasing at the
    guard: the idiomatic ``finally`` pattern stays legal.
    """

    rule_id = "shm-leak-path"
    summary = ("every CFG path from SharedMemory(create=True) must reach "
               "a release/owner-registration, exceptional edges included")
    #: call names that take ownership of a block passed as an argument
    _register_calls = frozenset({"append", "register", "track", "add"})

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for scope in iter_scopes(module.tree):
                yield from self._check_scope(module, scope)

    def _check_scope(self, module: Module,
                     scope: Scope) -> Iterator[Finding]:
        if not scope.body or not any(
                self._creates_block(module, leaf)
                for stmt in scope.body for leaf in shallow_walk(stmt)):
            return
        cfg = build_cfg(scope)
        for node in cfg.nodes:
            for code in node.code:
                for leaf in shallow_walk(code):
                    if isinstance(leaf, ast.Call) \
                            and self._creates_block(module, leaf):
                        yield from self._check_create(module, cfg, node,
                                                      leaf)

    def _creates_block(self, module: Module, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        canonical = module.resolve(node.func)
        if canonical is None or canonical.rpartition(".")[2] != "SharedMemory":
            return False
        return any(kw.arg == "create" and isinstance(kw.value, ast.Constant)
                   and kw.value.value is True for kw in node.keywords)

    def _check_create(self, module: Module, cfg: CFG, node: CFGNode,
                      create: ast.Call) -> Iterator[Finding]:
        name = self._bound_name(node, create)
        if name is None:
            # ownership transferred at the create site itself: assigned
            # to an attribute/subscript, registered inline, returned,
            # or entered as a context manager
            if self._owned_at_create(node, create):
                return
            yield from _finding(
                module, create, self.rule_id,
                "SharedMemory(create=True) is never bound to a releasable "
                "name; the block leaks the moment this statement "
                "completes")
            return
        releases = frozenset(
            other.index for other in cfg.nodes
            if other.index != node.index and self._releases(other, name))
        reached = cfg.reachable_without(
            node.index, releases,
            skip_exceptional_from=frozenset({node.index}))
        if cfg.exit not in reached:
            return
        normal_only = self._normal_reach(cfg, node.index, releases)
        how = ("only via an exceptional edge (an exception between "
               "create and release skips the cleanup)"
               if cfg.exit not in normal_only else "on a normal path")
        yield from _finding(
            module, create, self.rule_id,
            f"SharedMemory(create=True) bound to {name!r} can reach the "
            f"end of the scope without close()/unlink()/owner "
            f"registration {how}; the psm_* block would leak until "
            "reboot")

    @staticmethod
    def _normal_reach(cfg: CFG, start: int,
                      releases: frozenset[int]) -> set[int]:
        seen: set[int] = set()
        frontier = [start]
        while frontier:
            index = frontier.pop()
            if index in seen:
                continue
            seen.add(index)
            if index in releases and index != start:
                continue
            frontier.extend(cfg.nodes[index].succ - seen)
        return seen

    @staticmethod
    def _bound_name(node: CFGNode, create: ast.Call) -> str | None:
        """The plain name the create call is assigned to, if the node is
        a straight ``name = SharedMemory(create=True)`` binding."""
        stmt = node.stmt
        if isinstance(stmt, ast.Assign) and stmt.value is create:
            targets = stmt.targets
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                return targets[0].id
        if isinstance(stmt, ast.AnnAssign) and stmt.value is create \
                and isinstance(stmt.target, ast.Name):
            return stmt.target.id
        return None

    def _owned_at_create(self, node: CFGNode, create: ast.Call) -> bool:
        stmt = node.stmt
        if isinstance(stmt, (ast.Return, ast.Assign, ast.AnnAssign)):
            # returned, or stored into an attribute/subscript owner
            return True
        if node.kind == "with":
            return True
        for code in node.code:
            for leaf in shallow_walk(code):
                if (isinstance(leaf, ast.Call) and leaf is not create
                        and _called_name(leaf) in self._register_calls
                        and any(create is sub for arg in leaf.args
                                for sub in ast.walk(arg))):
                    return True
        return False

    def _releases(self, node: CFGNode, name: str) -> bool:
        """Whether executing ``node`` releases or transfers ownership of
        the block bound to ``name``."""
        stmt = node.stmt
        # `if shm is not None: shm.close()` — reaching the guard counts,
        # because the branch condition is about the tracked name itself
        if (node.kind == "test" and isinstance(stmt, ast.If)
                and _mentions(stmt.test, name)
                and any(self._release_action(leaf, name)
                        for leaf in ast.walk(stmt))):
            return True
        if node.kind == "with" and any(
                _mentions(code, name) for code in node.code):
            return True
        for code in node.code:
            for leaf in shallow_walk(code):
                if self._release_action(leaf, name):
                    return True
        if isinstance(stmt, ast.Return) and node.kind == "stmt" \
                and stmt.value is not None and _escapes(stmt.value, name):
            return True
        return False

    def _release_action(self, leaf: ast.AST, name: str) -> bool:
        if isinstance(leaf, ast.Call):
            func = leaf.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("close", "unlink")
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name):
                return True
            called = _called_name(leaf)
            if called is not None and (
                    called in self._register_calls
                    or "release" in called or "unlink" in called
                    or "close" in called):
                if any(_escapes(arg, name) for arg in leaf.args) or any(
                        _escapes(kw.value, name) for kw in leaf.keywords):
                    return True
        if isinstance(leaf, ast.Assign) and _escapes(leaf.value, name) \
                and any(isinstance(t, (ast.Attribute, ast.Subscript))
                        for t in leaf.targets):
            return True
        if isinstance(leaf, (ast.Yield, ast.YieldFrom)) \
                and leaf.value is not None and _escapes(leaf.value, name):
            return True
        return False


class NoSilentExcept:
    """Broad exception handlers must route somewhere observable.

    A bare ``except:`` or ``except Exception:`` whose body is only
    ``pass`` swallows executor failures that the typed-event protocol
    (``on_warning``, JobRetried/JobQuarantined) exists to surface.
    Narrow handlers (``except OSError: pass``) stay legal — they
    document exactly what is being ignored.
    """

    rule_id = "no-silent-except"
    summary = "bare/except-Exception handlers must not silently pass"
    _broad = frozenset({"Exception", "BaseException"})

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not self._is_broad(node.type):
                    continue
                if not self._is_silent(node.body):
                    continue
                caught = ("bare except" if node.type is None
                          else f"except {ast.unparse(node.type)}")
                yield from _finding(
                    module, node, self.rule_id,
                    f"{caught}: pass swallows failures silently; narrow "
                    "the exception type or route it through "
                    "on_warning/logging")

    def _is_broad(self, node: ast.expr | None) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(element) for element in node.elts)
        name = (node.attr if isinstance(node, ast.Attribute)
                else node.id if isinstance(node, ast.Name) else None)
        return name in self._broad

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        return all(isinstance(stmt, ast.Pass)
                   or (isinstance(stmt, ast.Expr)
                       and isinstance(stmt.value, ast.Constant))
                   for stmt in body)


class FrozenRecords:
    """Event/record dataclasses must be immutable.

    ``api/events.py``, ``core/resilience.py``, and ``obs/spans.py``
    define the typed records consumers dispatch on; a mutable record
    could change under a subscriber mid-stream (or after a trace sink
    journaled it).  Every dataclass in those modules must be declared
    ``frozen=True``.
    """

    rule_id = "frozen-records"
    summary = ("dataclasses in api/events.py, core/resilience.py, and "
               "obs/spans.py must be frozen=True")
    record_modules = frozenset({EVENTS_MODULE, RESILIENCE_MODULE,
                                OBS_SPANS_MODULE})

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if module.relpath not in self.record_modules:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                decorator = _dataclass_decorator(node)
                if decorator is None or _is_frozen(decorator):
                    continue
                yield from _finding(
                    module, node, self.rule_id,
                    f"dataclass {node.name} is a protocol record and "
                    "must be @dataclass(frozen=True); consumers rely on "
                    "records never mutating mid-stream")


def _api_event_classes(module: Module) -> dict[str, ast.ClassDef]:
    """RunEvent subclasses defined in ``module`` (transitively, by local
    base name) — the protocol vocabulary shared by every layer."""
    event_names = {"RunEvent"}
    found: dict[str, ast.ClassDef] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases = {base.id for base in node.bases
                 if isinstance(base, ast.Name)}
        if bases & event_names:
            event_names.add(node.name)
            found[node.name] = node
    return found


def _isinstance_targets(module: Module) -> set[str]:
    """Class names checked via ``isinstance(x, T)`` anywhere in the
    module (tuple second arguments included)."""
    targets: set[str] = set()
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2):
            continue
        spec = node.args[1]
        elements = spec.elts if isinstance(spec, ast.Tuple) else [spec]
        for element in elements:
            if isinstance(element, ast.Name):
                targets.add(element.id)
            elif isinstance(element, ast.Attribute):
                targets.add(element.attr)
    return targets


class EventExhaustiveness:
    """Engine records must mirror into the api event vocabulary.

    Cross-module contract: each record the engine supervision layer
    emits (``core/resilience.py``) needs a mirror entry in
    ``api/handle.py``'s ``_ENGINE_EVENTS`` relay table plus a
    same-named api event.  Without this, adding a record silently drops
    it from api subscribers.  Consumer-side exhaustiveness (wire table,
    CLI renderer, docs) lives in the ``protocol-drift`` rule.  Findings
    are never baseline-waivable.
    """

    rule_id = "event-exhaustiveness"
    summary = ("every engine record needs an api mirror event and an "
               "api/handle.py relay entry")

    def check(self, project: Project) -> Iterable[Finding]:
        events = project.get(EVENTS_MODULE)
        if events is None:
            return  # partial lint run without the protocol modules
        api_events = _api_event_classes(events)
        resilience = project.get(RESILIENCE_MODULE)
        handle = project.get(HANDLE_MODULE)
        if resilience is None:
            return
        emitted = self._emitted_records(resilience)
        relayed = (self._engine_events_keys(handle)
                   if handle is not None else None)
        for name, node in emitted.items():
            if name not in api_events:
                yield from _finding(
                    resilience, node, self.rule_id,
                    f"engine record {name} has no same-named mirror "
                    "event in api/events.py; api consumers can never "
                    "see it", waivable=False)
            if relayed is not None and name not in relayed:
                yield from _finding(
                    resilience, node, self.rule_id,
                    f"engine record {name} is missing from "
                    "api/handle.py's _ENGINE_EVENTS relay table; it "
                    "would never be mirrored to api subscribers",
                    waivable=False)

    @staticmethod
    def _emitted_records(module: Module) -> dict[str, ast.ClassDef]:
        """Dataclasses the supervision layer constructs inside an
        ``emit``/``_emit`` call — the records executors forward."""
        classes = {node.name: node for node in module.tree.body
                   if isinstance(node, ast.ClassDef)
                   and _dataclass_decorator(node) is not None}
        emitted: dict[str, ast.ClassDef] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            called = (callee.attr if isinstance(callee, ast.Attribute)
                      else callee.id if isinstance(callee, ast.Name)
                      else None)
            if called is None or not called.lstrip("_").startswith("emit"):
                continue
            for arg in node.args:
                if (isinstance(arg, ast.Call)
                        and isinstance(arg.func, ast.Name)
                        and arg.func.id in classes):
                    emitted[arg.func.id] = classes[arg.func.id]
        return emitted

    @staticmethod
    def _engine_events_keys(module: Module) -> set[str]:
        """Key class names of the ``_ENGINE_EVENTS`` dict literal."""
        keys: set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(isinstance(t, ast.Name) and t.id == "_ENGINE_EVENTS"
                       for t in node.targets):
                continue
            if isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    if isinstance(key, ast.Attribute):
                        keys.add(key.attr)
                    elif isinstance(key, ast.Name):
                        keys.add(key.id)
        return keys


class NoUnpicklableSubmit:
    """Work shipped to executor pools must be picklable.

    A lambda or nested function handed to ``apply_async``/``submit``/
    ``imap*`` dies with ``PicklingError`` only once a real pool runs it
    — the serial executor masks the bug.  Callbacks (keyword arguments)
    run parent-side and are exempt.
    """

    rule_id = "no-unpicklable-submit"
    summary = ("no lambdas/nested functions as the task callable of "
               "executor submit/apply paths")
    _submit_names = frozenset({
        "apply_async", "apply", "submit", "imap", "imap_unordered",
        "map_async", "starmap", "starmap_async",
    })

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            nested = self._nested_defs(module)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if not (isinstance(node.func, ast.Attribute)
                        and node.func.attr in self._submit_names):
                    continue
                if not node.args:
                    continue
                task = node.args[0]
                if isinstance(task, ast.Lambda):
                    yield from _finding(
                        module, task, self.rule_id,
                        f"lambda passed to .{node.func.attr}() cannot be "
                        "pickled into a worker process; use a "
                        "module-level function")
                elif isinstance(task, ast.Name) and task.id in nested:
                    yield from _finding(
                        module, task, self.rule_id,
                        f"nested function {task.id}() passed to "
                        f".{node.func.attr}() cannot be pickled into a "
                        "worker process; move it to module level")

    @staticmethod
    def _nested_defs(module: Module) -> set[str]:
        """Names defined by ``def`` inside another function, excluding
        names that also exist at module level (those resolve fine)."""
        top_level = {node.name for node in module.tree.body
                     if isinstance(node, _FUNCTION_NODES)}
        nested: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, _FUNCTION_NODES):
                for child in ast.walk(node):
                    if child is not node and isinstance(child,
                                                        _FUNCTION_NODES):
                        nested.add(child.name)
        return nested - top_level


class UnboundedQueue:
    """Service-side queues must be bounded.

    The campaign service is a long-lived server: an
    ``asyncio.Queue()`` / ``queue.Queue()`` constructed without a
    ``maxsize`` inside ``src/repro/service/`` grows without limit under
    a fast producer, turning client pressure into server memory
    exhaustion instead of an explicit 503.  Admission control
    (:class:`repro.service.queue.JobQueue`'s bounded buffer) is the
    contract; every queue there must declare its bound.  Other layers
    (e.g. the finite event relay in ``api/handle.py``) drain a known
    number of items and stay exempt.
    """

    rule_id = "no-unbounded-queue"
    summary = ("queue constructors in src/repro/service/ must pass an "
               "explicit maxsize bound")
    service_prefix = "src/repro/service/"
    _queue_types = frozenset({
        "asyncio.Queue", "asyncio.LifoQueue", "asyncio.PriorityQueue",
        "asyncio.queues.Queue",
        "queue.Queue", "queue.LifoQueue", "queue.PriorityQueue",
        "queue.SimpleQueue",
        "multiprocessing.Queue", "multiprocessing.SimpleQueue",
    })

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if not module.relpath.startswith(self.service_prefix):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                canonical = module.resolve(node.func)
                if canonical not in self._queue_types:
                    continue
                if self._bounded(node):
                    continue
                yield from _finding(
                    module, node, self.rule_id,
                    f"{canonical}() without maxsize is unbounded; a "
                    "long-lived server must refuse work explicitly "
                    "(bounded queue -> 503) instead of buffering until "
                    "memory runs out")

    @staticmethod
    def _bounded(node: ast.Call) -> bool:
        """True when a positive bound is passed (positionally or as
        ``maxsize=``).  A literal ``0``/``None`` bound — queue-speak for
        "infinite" — counts as unbounded."""
        candidates = list(node.args[:1]) + [kw.value for kw in node.keywords
                                            if kw.arg == "maxsize"]
        if not candidates:
            return False
        bound = candidates[0]
        if isinstance(bound, ast.Constant) and bound.value in (0, None):
            return False
        return True


class RngTaint:
    """Caller-provided randomness must taint every generator built.

    Flow-sensitive successor of the old ``seed-threading`` rule: in a
    public ``src/`` function taking an ``rng``/``seed`` parameter, the
    dataflow from that parameter (via :func:`propagate_taint`) must
    reach the arguments of every ``default_rng``/``Generator``
    construction in the function.  A generator built from values with
    no path back to the caller's seed forks an independent stream —
    exactly the nondeterminism the paper's bit-identical campaigns
    cannot absorb.  Unlike the grep-shaped predecessor this follows the
    seed through intermediate assignments (``s = seed + i``) and kills
    the taint when a name is reassigned from a clean value.
    """

    rule_id = "rng-taint"
    summary = ("in public src/ functions, rng/seed parameters must "
               "taint every generator construction")
    _constructors = frozenset({"numpy.random.default_rng",
                               "numpy.random.Generator"})
    _seed_params = frozenset({"rng", "seed"})

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if not module.relpath.startswith("src/"):
                continue
            for scope in iter_scopes(module.tree):
                if not isinstance(scope, _FUNCTION_NODES):
                    continue
                if scope.name.startswith("_"):
                    continue
                seeds = self._seed_params & _param_names(scope)
                if not seeds:
                    continue
                yield from self._check_function(module, scope,
                                                frozenset(seeds))

    def _check_function(self, module: Module,
                        function: ast.FunctionDef | ast.AsyncFunctionDef,
                        seeds: frozenset[str]) -> Iterator[Finding]:
        cfg = build_cfg(function)
        calls = [
            (node, leaf) for node in cfg.nodes
            for code in node.code for leaf in shallow_walk(code)
            if isinstance(leaf, ast.Call)
            and module.resolve(leaf.func) in self._constructors]
        if not calls:
            return
        tainted = propagate_taint(cfg, seeds)
        for node, call in calls:
            arg_exprs = [*call.args, *(kw.value for kw in call.keywords)]
            if not arg_exprs:
                yield from _finding(
                    module, call, self.rule_id,
                    f"{function.name}() takes {'/'.join(sorted(seeds))} "
                    "but constructs an unseeded generator; the caller's "
                    "stream never reaches it")
                continue
            state = tainted[node.index] | seeds
            if not any(expr_is_tainted(expr, state) for expr in arg_exprs):
                yield from _finding(
                    module, call, self.rule_id,
                    f"{function.name}() takes "
                    f"{'/'.join(sorted(seeds))} but no dataflow from it "
                    "reaches this generator construction; the stream "
                    "forks independently of the caller's seed")


class ObsPickleBoundary:
    """Observability objects must never cross a pickle boundary.

    Tracers, metrics registries, and ``Observability`` bundles hold
    locks, file handles, and callbacks — pickling one into an executor
    payload either crashes the pool or silently forks the telemetry
    state.  This rule taints every value whose def-chain includes a
    ``Tracer``/``MetricsRegistry``/``Observability`` construction (or a
    parameter named/annotated as one) and flags any tainted value in
    the *payload* arguments of ``apply_async``/``submit``/``imap*``.
    Callbacks (``callback=``/``error_callback=``) run parent-side and
    stay exempt.
    """

    rule_id = "obs-pickle-boundary"
    summary = ("no Tracer/MetricsRegistry/Observability value may flow "
               "into executor submit payloads")
    _submit_names = frozenset({
        "apply_async", "apply", "submit", "imap", "imap_unordered",
        "map_async", "starmap", "starmap_async",
    })
    _obs_types = frozenset({"Tracer", "MetricsRegistry", "Observability"})
    _obs_factories = frozenset({"get_registry"})
    _parent_side_kwargs = frozenset({"callback", "error_callback"})

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if not module.relpath.startswith("src/"):
                continue
            for scope in iter_scopes(module.tree):
                if not isinstance(scope, _FUNCTION_NODES):
                    continue
                if not any(isinstance(leaf, ast.Call)
                           and isinstance(leaf.func, ast.Attribute)
                           and leaf.func.attr in self._submit_names
                           for stmt in scope.body
                           for leaf in shallow_walk(stmt)):
                    continue
                yield from self._check_function(module, scope)

    def _is_source(self, module: Module, leaf: ast.AST) -> bool:
        if not isinstance(leaf, ast.Call):
            return False
        canonical = module.resolve(leaf.func)
        if canonical is not None:
            tail = canonical.rpartition(".")[2]
            return tail in self._obs_types | self._obs_factories
        called = _called_name(leaf)
        return called in self._obs_types | self._obs_factories

    def _tainted_params(self, function: ast.FunctionDef
                        | ast.AsyncFunctionDef) -> frozenset[str]:
        names: set[str] = set()
        args = function.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg in ("obs", "tracer", "metrics", "observability"):
                names.add(arg.arg)
                continue
            annotation = arg.annotation
            if annotation is not None and any(
                    isinstance(leaf, ast.Name) and leaf.id in self._obs_types
                    or isinstance(leaf, ast.Attribute)
                    and leaf.attr in self._obs_types
                    for leaf in ast.walk(annotation)):
                names.add(arg.arg)
        return frozenset(names)

    def _check_function(self, module: Module,
                        function: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> Iterator[Finding]:
        cfg = build_cfg(function)
        tainted = propagate_taint(
            cfg, self._tainted_params(function),
            lambda leaf: self._is_source(module, leaf))
        for node in cfg.nodes:
            for code in node.code:
                for leaf in shallow_walk(code):
                    if not (isinstance(leaf, ast.Call)
                            and isinstance(leaf.func, ast.Attribute)
                            and leaf.func.attr in self._submit_names):
                        continue
                    state = tainted[node.index]
                    for expr in self._payload_args(leaf):
                        if expr_is_tainted(
                                expr, state,
                                lambda sub: self._is_source(module, sub)):
                            yield from _finding(
                                module, expr, self.rule_id,
                                "observability object (Tracer/Metrics"
                                "Registry/Observability def-chain) flows "
                                f"into .{leaf.func.attr}() payload; it "
                                "cannot cross the pickle boundary into a "
                                "worker process")

    def _payload_args(self, call: ast.Call) -> Iterator[ast.expr]:
        yield from call.args
        for kw in call.keywords:
            if kw.arg not in self._parent_side_kwargs:
                yield kw.value


class JournalOrder:
    """Record-before-progress: the store write must dominate the
    publish.

    In the service worker loop (``service/queue.py``), a job result
    must be durably recorded (``save_result``) before the
    state-transition event that announces completion is published —
    otherwise a crash between publish and write leaves watchers who saw
    ``DONE`` fetching a result that does not exist.  The CFG proof
    obligation: every ``transition(... DONE ...)`` call node must be
    *dominated* by a ``save_result`` call node, so no execution path
    reaches the announcement without passing the write.
    """

    rule_id = "journal-order"
    summary = ("in service/queue.py workers, save_result must dominate "
               "the DONE transition/publish")
    worker_paths = ("src/repro/service/queue.py",)
    _store_calls = frozenset({"save_result"})
    _publish_calls = frozenset({"transition"})

    def check(self, project: Project) -> Iterable[Finding]:
        for path in self.worker_paths:
            module = project.get(path)
            if module is None:
                continue
            for scope in iter_scopes(module.tree):
                if not isinstance(scope, _FUNCTION_NODES):
                    continue
                yield from self._check_function(module, scope)

    def _check_function(self, module: Module,
                        function: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> Iterator[Finding]:
        cfg = build_cfg(function)
        stores: set[int] = set()
        publishes: list[tuple[CFGNode, ast.Call]] = []
        for node in cfg.nodes:
            for code in node.code:
                for leaf in shallow_walk(code):
                    if not isinstance(leaf, ast.Call):
                        continue
                    called = _called_name(leaf)
                    if called in self._store_calls:
                        stores.add(node.index)
                    elif called in self._publish_calls \
                            and self._announces_done(leaf):
                        publishes.append((node, leaf))
        if not publishes:
            return
        dom = cfg.dominators()
        for node, call in publishes:
            if not stores & dom[node.index]:
                yield from _finding(
                    module, call, self.rule_id,
                    f"{function.name}() publishes a DONE transition "
                    "that is not dominated by a save_result() store "
                    "write; a crash after this publish would announce a "
                    "result that was never recorded")

    @staticmethod
    def _announces_done(call: ast.Call) -> bool:
        return any(isinstance(leaf, ast.Attribute) and leaf.attr == "DONE"
                   for arg in (*call.args,
                               *(kw.value for kw in call.keywords))
                   for leaf in ast.walk(arg))


class ProtocolDrift:
    """Every RunEvent must exist consistently across all four layers.

    The event protocol is defined once (``api/events.py``) and consumed
    three more times: the wire codec's ``EVENT_TYPES`` registry
    (``service/wire.py``), the CLI renderer's ``isinstance`` dispatch
    (``cli.py``), and the human-facing catalogs (``docs/api.md`` events
    table, ``docs/static-analysis.md`` rule catalog).  A subclass
    missing from any layer is protocol drift: the wire silently drops
    it, the CLI swallows it, or the docs lie.  This rule reads all four
    layers and fails unwaivably on any asymmetry — including the
    reverse direction (a wire/docs entry for an event that no longer
    exists).  Docs layers are read from ``project.root`` and skipped
    when absent, so fixture trees without docs stay checkable.
    """

    rule_id = "protocol-drift"
    summary = ("RunEvent subclasses must agree across events.py, "
               "wire.py EVENT_TYPES, the CLI renderer, and the docs "
               "catalogs")
    docs_api = "docs/api.md"
    docs_lint = "docs/static-analysis.md"

    def check(self, project: Project) -> Iterable[Finding]:
        events = project.get(EVENTS_MODULE)
        if events is None:
            return  # partial lint run without the protocol modules
        api_events = _api_event_classes(events)
        yield from self._check_wire(project, events, api_events)
        yield from self._check_cli(project, events, api_events)
        yield from self._check_docs(project, events, api_events)

    def _check_wire(self, project: Project, events: Module,
                    api_events: dict[str, ast.ClassDef]
                    ) -> Iterator[Finding]:
        wire = project.get(WIRE_MODULE)
        if wire is None:
            return
        registered = self._event_types_keys(wire)
        if registered is None:
            yield Finding(
                path=wire.relpath, line=1, rule=self.rule_id,
                message="service/wire.py has no parseable EVENT_TYPES "
                        "registry; the wire codec cannot be checked "
                        "against the event vocabulary", waivable=False)
            return
        names, node = registered
        for name, cls in api_events.items():
            if name not in names:
                yield from _finding(
                    events, cls, self.rule_id,
                    f"event {name} is missing from service/wire.py's "
                    "EVENT_TYPES registry; the wire codec would drop it "
                    "on decode", waivable=False)
        for name in sorted(names - api_events.keys()):
            yield from _finding(
                wire, node, self.rule_id,
                f"wire.py EVENT_TYPES registers {name}, which is not a "
                "RunEvent subclass in api/events.py; stale registry "
                "entry", waivable=False)

    def _check_cli(self, project: Project, events: Module,
                   api_events: dict[str, ast.ClassDef]
                   ) -> Iterator[Finding]:
        cli = project.get(CLI_MODULE)
        if cli is None:
            return
        dispatched = _isinstance_targets(cli)
        for name, cls in api_events.items():
            if name not in dispatched:
                yield from _finding(
                    events, cls, self.rule_id,
                    f"event {name} has no isinstance dispatch branch in "
                    "cli.py's renderer; a run emitting it would be "
                    "silently dropped from the CLI", waivable=False)

    def _check_docs(self, project: Project, events: Module,
                    api_events: dict[str, ast.ClassDef]
                    ) -> Iterator[Finding]:
        api_text = self._read_doc(project, self.docs_api)
        if api_text is not None:
            for name, cls in api_events.items():
                if name not in api_text:
                    yield from _finding(
                        events, cls, self.rule_id,
                        f"event {name} is not documented in "
                        f"{self.docs_api}'s event catalog; the public "
                        "protocol docs have drifted", waivable=False)
        lint_text = self._read_doc(project, self.docs_lint)
        if lint_text is not None:
            for rule in DEFAULT_RULES:
                if f"`{rule.rule_id}`" not in lint_text:
                    yield Finding(
                        path=self.docs_lint, line=1, rule=self.rule_id,
                        message=f"rule {rule.rule_id} is not documented "
                                f"in {self.docs_lint}'s catalog; the "
                                "rule catalog has drifted",
                        waivable=False)

    @staticmethod
    def _read_doc(project: Project, relpath: str) -> str | None:
        path = project.root / relpath
        try:
            return path.read_text(encoding="utf-8")
        except OSError:
            return None  # fixture trees ship no docs — skip the layer

    @staticmethod
    def _event_types_keys(module: Module) -> tuple[set[str],
                                                   ast.AST] | None:
        """Names registered in the ``EVENT_TYPES`` assignment: dict
        literal keys, or the classes enumerated by the PR 8 dict
        comprehension ``{cls.__name__: cls for cls in (...)}``."""
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            if not any(isinstance(t, ast.Name) and t.id == "EVENT_TYPES"
                       for t in targets):
                continue
            value = node.value
            names: set[str] = set()
            if isinstance(value, ast.Dict):
                for key in value.keys:
                    if isinstance(key, ast.Constant) \
                            and isinstance(key.value, str):
                        names.add(key.value)
                    elif isinstance(key, ast.Attribute):
                        names.add(key.attr)
                    elif isinstance(key, ast.Name):
                        names.add(key.id)
                return names, node
            if isinstance(value, ast.DictComp) and value.generators:
                source = value.generators[0].iter
                elements = (source.elts
                            if isinstance(source, (ast.Tuple, ast.List))
                            else [])
                for element in elements:
                    if isinstance(element, ast.Attribute):
                        names.add(element.attr)
                    elif isinstance(element, ast.Name):
                        names.add(element.id)
                return names, node
        return None


DEFAULT_RULES: tuple[Rule, ...] = (
    NoGlobalRng(), NoWallClock(), ShmLeakPath(), NoSilentExcept(),
    FrozenRecords(), EventExhaustiveness(), ProtocolDrift(),
    NoUnpicklableSubmit(), UnboundedQueue(), RngTaint(),
    ObsPickleBoundary(), JournalOrder(),
)
