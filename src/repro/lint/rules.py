"""The repo-specific invariant rules.

Each rule encodes one contract the reproduction's trustworthiness rests
on — determinism (seeded RNG flow), resource lifecycle (shared-memory
release), failure routing (no silent excepts), and the typed-event
protocol (frozen records, exhaustive rendering/relaying).  Rules are
pure AST analyses over a :class:`~repro.lint.project.Project`; none of
them import or execute the code under check.

The catalog (rule id → contract) is documented for humans in
``docs/static-analysis.md``; keep the two in sync when adding a rule.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from .findings import Finding, Rule
from .project import Module, Project

__all__ = [
    "DEFAULT_RULES",
    "EventExhaustiveness",
    "FrozenRecords",
    "NoGlobalRng",
    "NoSilentExcept",
    "NoUnpicklableSubmit",
    "NoWallClock",
    "SeedThreading",
    "ShmLifecycle",
    "UnboundedQueue",
]

#: the protocol modules whose dataclasses are wire/event records
EVENTS_MODULE = "src/repro/api/events.py"
RESILIENCE_MODULE = "src/repro/core/resilience.py"
CLI_MODULE = "src/repro/cli.py"
HANDLE_MODULE = "src/repro/api/handle.py"
#: the telemetry clock — the only other legitimate monotonic reader
OBS_CLOCK_MODULE = "src/repro/obs/clock.py"
#: trace spans are protocol records too (journaled, rendered)
OBS_SPANS_MODULE = "src/repro/obs/spans.py"

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _finding(module: Module, node: ast.AST, rule_id: str, message: str, *,
             waivable: bool = True) -> Iterator[Finding]:
    """Yield one finding unless an inline suppression covers it."""
    line = getattr(node, "lineno", 1)
    if not module.suppressed(line, rule_id):
        yield Finding(path=module.relpath, line=line, rule=rule_id,
                      message=message, waivable=waivable)


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = node.args
    return {a.arg for a in
            (*args.posonlyargs, *args.args, *args.kwonlyargs)}


def _walk_own_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested function or
    lambda scopes (their parameters establish their own contracts)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, (*_FUNCTION_NODES, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(child))


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    """The ``@dataclass`` / ``@dataclass(...)`` decorator, if any."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (target.attr if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name) else None)
        if name == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False  # bare @dataclass: frozen defaults to False
    return any(kw.arg == "frozen" and isinstance(kw.value, ast.Constant)
               and kw.value.value is True for kw in decorator.keywords)


class NoGlobalRng:
    """All randomness must flow through explicitly seeded generators.

    Module-state numpy RNG (``np.random.rand`` and friends, including
    ``np.random.seed``), the stdlib ``random`` module, and argless
    ``default_rng()`` all read or mutate hidden global state, which
    breaks the bit-identical campaign contract the moment execution
    order changes (pool executors, resumed journals).
    """

    rule_id = "no-global-rng"
    summary = ("ban np.random module-state calls, stdlib random, and "
               "argless default_rng()")
    #: shared test fixtures may centralize seeding helpers
    allowed_paths = frozenset({"tests/conftest.py"})
    #: numpy.random attributes that construct explicit, seedable state
    _constructors = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    })

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if module.relpath in self.allowed_paths:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                canonical = module.resolve(node.func)
                if canonical is None:
                    continue
                if canonical.startswith("random."):
                    yield from _finding(
                        module, node, self.rule_id,
                        f"stdlib {canonical}() uses hidden global RNG "
                        "state; thread a seeded np.random.Generator "
                        "instead")
                elif canonical == "numpy.random.default_rng":
                    if not node.args and not node.keywords:
                        yield from _finding(
                            module, node, self.rule_id,
                            "argless default_rng() is entropy-seeded and "
                            "unreproducible; pass an explicit seed")
                elif (canonical.startswith("numpy.random.")
                      and canonical.rpartition(".")[2]
                      not in self._constructors):
                    tail = canonical.removeprefix("numpy.")
                    yield from _finding(
                        module, node, self.rule_id,
                        f"{tail}() uses numpy's global RNG state; use a "
                        "seeded np.random.Generator method instead")


class NoWallClock:
    """Deterministic paths must not read the wall clock.

    ``time.time``/``datetime.now`` values leak into results and make
    reruns differ; ``time.monotonic`` is allow-listed in exactly two
    places — the supervision layer (timeouts, stall watchdogs in
    ``core/resilience.py``) and the telemetry clock
    (``obs/clock.py``'s ``SystemClock``, behind the swappable
    :class:`~repro.obs.clock.Clock` abstraction so instrumented runs
    stay replayable under a ``FakeClock``).
    """

    rule_id = "no-wall-clock"
    summary = ("ban time.time/datetime.now everywhere; time.monotonic "
               "outside core/resilience.py and obs/clock.py")
    _banned = frozenset({
        "time.time", "time.time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })
    _monotonic = frozenset({"time.monotonic", "time.monotonic_ns"})
    monotonic_paths = frozenset({RESILIENCE_MODULE, OBS_CLOCK_MODULE})

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                canonical = module.resolve(node.func)
                if canonical in self._banned:
                    yield from _finding(
                        module, node, self.rule_id,
                        f"{canonical}() reads the wall clock in a "
                        "deterministic path; results must be a pure "
                        "function of seeds and inputs")
                elif (canonical in self._monotonic
                      and module.relpath not in self.monotonic_paths):
                    yield from _finding(
                        module, node, self.rule_id,
                        f"{canonical}() is reserved for the supervision "
                        "layer (core/resilience.py) and the telemetry "
                        "clock (obs/clock.py); deterministic code must "
                        "not branch on elapsed time")


class ShmLifecycle:
    """Every created shared-memory block needs an owner that releases it.

    A ``SharedMemory(create=True)`` call must either run under a
    ``try``/``finally`` that can unlink it, immediately register the
    block with a lifecycle container (``*.append(shm)`` /
    ``register(shm)``), or live inside :class:`SharedPlaneRegistry`
    itself — otherwise any exception between create and release leaks a
    ``psm_*`` block until reboot.
    """

    rule_id = "shm-lifecycle"
    summary = ("SharedMemory(create=True) must be try/finally-guarded or "
               "registered with a lifecycle owner")
    _register_calls = frozenset({"append", "register", "track", "add"})

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not self._creates_block(module, node):
                    continue
                if self._guarded(module, node):
                    continue
                yield from _finding(
                    module, node, self.rule_id,
                    "SharedMemory(create=True) without a try/finally "
                    "release or registration with a lifecycle owner "
                    "(SharedPlaneRegistry); a failure here leaks the "
                    "block until reboot")

    @staticmethod
    def _creates_block(module: Module, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        canonical = module.resolve(node.func)
        if canonical is None or canonical.rpartition(".")[2] != "SharedMemory":
            return False
        return any(kw.arg == "create" and isinstance(kw.value, ast.Constant)
                   and kw.value.value is True for kw in node.keywords)

    def _guarded(self, module: Module, node: ast.AST) -> bool:
        target: str | None = None
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.Try) and ancestor.finalbody:
                return True
            if (isinstance(ancestor, ast.ClassDef)
                    and ancestor.name == "SharedPlaneRegistry"):
                return True
            if isinstance(ancestor, ast.Assign) and target is None:
                for t in ancestor.targets:
                    if isinstance(t, ast.Name):
                        target = t.id
            if isinstance(ancestor, _FUNCTION_NODES):
                return (target is not None
                        and self._registered(ancestor, target))
        return False

    def _registered(self, function: ast.AST, name: str) -> bool:
        """Whether the enclosing function hands ``name`` to a lifecycle
        container (``owner.append(name)`` / ``register(name)``)."""
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            called = (callee.attr if isinstance(callee, ast.Attribute)
                      else callee.id if isinstance(callee, ast.Name)
                      else None)
            if called not in self._register_calls:
                continue
            if any(isinstance(arg, ast.Name) and arg.id == name
                   for arg in node.args):
                return True
        return False


class NoSilentExcept:
    """Broad exception handlers must route somewhere observable.

    A bare ``except:`` or ``except Exception:`` whose body is only
    ``pass`` swallows executor failures that the typed-event protocol
    (``on_warning``, JobRetried/JobQuarantined) exists to surface.
    Narrow handlers (``except OSError: pass``) stay legal — they
    document exactly what is being ignored.
    """

    rule_id = "no-silent-except"
    summary = "bare/except-Exception handlers must not silently pass"
    _broad = frozenset({"Exception", "BaseException"})

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not self._is_broad(node.type):
                    continue
                if not self._is_silent(node.body):
                    continue
                caught = ("bare except" if node.type is None
                          else f"except {ast.unparse(node.type)}")
                yield from _finding(
                    module, node, self.rule_id,
                    f"{caught}: pass swallows failures silently; narrow "
                    "the exception type or route it through "
                    "on_warning/logging")

    def _is_broad(self, node: ast.expr | None) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(element) for element in node.elts)
        name = (node.attr if isinstance(node, ast.Attribute)
                else node.id if isinstance(node, ast.Name) else None)
        return name in self._broad

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        return all(isinstance(stmt, ast.Pass)
                   or (isinstance(stmt, ast.Expr)
                       and isinstance(stmt.value, ast.Constant))
                   for stmt in body)


class FrozenRecords:
    """Event/record dataclasses must be immutable.

    ``api/events.py``, ``core/resilience.py``, and ``obs/spans.py``
    define the typed records consumers dispatch on; a mutable record
    could change under a subscriber mid-stream (or after a trace sink
    journaled it).  Every dataclass in those modules must be declared
    ``frozen=True``.
    """

    rule_id = "frozen-records"
    summary = ("dataclasses in api/events.py, core/resilience.py, and "
               "obs/spans.py must be frozen=True")
    record_modules = frozenset({EVENTS_MODULE, RESILIENCE_MODULE,
                                OBS_SPANS_MODULE})

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if module.relpath not in self.record_modules:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                decorator = _dataclass_decorator(node)
                if decorator is None or _is_frozen(decorator):
                    continue
                yield from _finding(
                    module, node, self.rule_id,
                    f"dataclass {node.name} is a protocol record and "
                    "must be @dataclass(frozen=True); consumers rely on "
                    "records never mutating mid-stream")


class EventExhaustiveness:
    """Every typed event must reach every consumer.

    Cross-module contract: each :class:`RunEvent` subclass defined in
    ``api/events.py`` needs an ``isinstance`` dispatch branch in the CLI
    renderer (``cli.py``), and each record the engine supervision layer
    emits (``core/resilience.py``) needs a mirror entry in
    ``api/handle.py``'s ``_ENGINE_EVENTS`` relay table plus a
    same-named api event.  Without this, adding an event silently drops
    it from one consumer.  Findings are never baseline-waivable.
    """

    rule_id = "event-exhaustiveness"
    summary = ("every typed event must be rendered by cli.py and every "
               "engine record relayed by api/handle.py")

    def check(self, project: Project) -> Iterable[Finding]:
        events = project.get(EVENTS_MODULE)
        if events is None:
            return  # partial lint run without the protocol modules
        api_events = self._api_events(events)
        cli = project.get(CLI_MODULE)
        if cli is not None:
            dispatched = self._isinstance_targets(cli)
            for name, node in api_events.items():
                if name not in dispatched:
                    yield from _finding(
                        events, node, self.rule_id,
                        f"event {name} has no isinstance dispatch branch "
                        "in cli.py's renderer; a run emitting it would "
                        "be silently dropped from the CLI",
                        waivable=False)
        resilience = project.get(RESILIENCE_MODULE)
        handle = project.get(HANDLE_MODULE)
        if resilience is None:
            return
        emitted = self._emitted_records(resilience)
        relayed = (self._engine_events_keys(handle)
                   if handle is not None else None)
        for name, node in emitted.items():
            if name not in api_events:
                yield from _finding(
                    resilience, node, self.rule_id,
                    f"engine record {name} has no same-named mirror "
                    "event in api/events.py; api consumers can never "
                    "see it", waivable=False)
            if relayed is not None and name not in relayed:
                yield from _finding(
                    resilience, node, self.rule_id,
                    f"engine record {name} is missing from "
                    "api/handle.py's _ENGINE_EVENTS relay table; it "
                    "would never be mirrored to api subscribers",
                    waivable=False)

    @staticmethod
    def _api_events(module: Module) -> dict[str, ast.ClassDef]:
        """RunEvent subclasses (transitively, by local base name)."""
        event_names = {"RunEvent"}
        found: dict[str, ast.ClassDef] = {}
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {base.id for base in node.bases
                     if isinstance(base, ast.Name)}
            if bases & event_names:
                event_names.add(node.name)
                found[node.name] = node
        return found

    @staticmethod
    def _isinstance_targets(module: Module) -> set[str]:
        """Class names checked via ``isinstance(x, T)`` anywhere in the
        module (tuple second arguments included)."""
        targets: set[str] = set()
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2):
                continue
            spec = node.args[1]
            elements = spec.elts if isinstance(spec, ast.Tuple) else [spec]
            for element in elements:
                if isinstance(element, ast.Name):
                    targets.add(element.id)
                elif isinstance(element, ast.Attribute):
                    targets.add(element.attr)
        return targets

    @staticmethod
    def _emitted_records(module: Module) -> dict[str, ast.ClassDef]:
        """Dataclasses the supervision layer constructs inside an
        ``emit``/``_emit`` call — the records executors forward."""
        classes = {node.name: node for node in module.tree.body
                   if isinstance(node, ast.ClassDef)
                   and _dataclass_decorator(node) is not None}
        emitted: dict[str, ast.ClassDef] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            called = (callee.attr if isinstance(callee, ast.Attribute)
                      else callee.id if isinstance(callee, ast.Name)
                      else None)
            if called is None or not called.lstrip("_").startswith("emit"):
                continue
            for arg in node.args:
                if (isinstance(arg, ast.Call)
                        and isinstance(arg.func, ast.Name)
                        and arg.func.id in classes):
                    emitted[arg.func.id] = classes[arg.func.id]
        return emitted

    @staticmethod
    def _engine_events_keys(module: Module) -> set[str]:
        """Key class names of the ``_ENGINE_EVENTS`` dict literal."""
        keys: set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(isinstance(t, ast.Name) and t.id == "_ENGINE_EVENTS"
                       for t in node.targets):
                continue
            if isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    if isinstance(key, ast.Attribute):
                        keys.add(key.attr)
                    elif isinstance(key, ast.Name):
                        keys.add(key.id)
        return keys


class NoUnpicklableSubmit:
    """Work shipped to executor pools must be picklable.

    A lambda or nested function handed to ``apply_async``/``submit``/
    ``imap*`` dies with ``PicklingError`` only once a real pool runs it
    — the serial executor masks the bug.  Callbacks (keyword arguments)
    run parent-side and are exempt.
    """

    rule_id = "no-unpicklable-submit"
    summary = ("no lambdas/nested functions as the task callable of "
               "executor submit/apply paths")
    _submit_names = frozenset({
        "apply_async", "apply", "submit", "imap", "imap_unordered",
        "map_async", "starmap", "starmap_async",
    })

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            nested = self._nested_defs(module)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if not (isinstance(node.func, ast.Attribute)
                        and node.func.attr in self._submit_names):
                    continue
                if not node.args:
                    continue
                task = node.args[0]
                if isinstance(task, ast.Lambda):
                    yield from _finding(
                        module, task, self.rule_id,
                        f"lambda passed to .{node.func.attr}() cannot be "
                        "pickled into a worker process; use a "
                        "module-level function")
                elif isinstance(task, ast.Name) and task.id in nested:
                    yield from _finding(
                        module, task, self.rule_id,
                        f"nested function {task.id}() passed to "
                        f".{node.func.attr}() cannot be pickled into a "
                        "worker process; move it to module level")

    @staticmethod
    def _nested_defs(module: Module) -> set[str]:
        """Names defined by ``def`` inside another function, excluding
        names that also exist at module level (those resolve fine)."""
        top_level = {node.name for node in module.tree.body
                     if isinstance(node, _FUNCTION_NODES)}
        nested: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, _FUNCTION_NODES):
                for child in ast.walk(node):
                    if child is not node and isinstance(child,
                                                        _FUNCTION_NODES):
                        nested.add(child.name)
        return nested - top_level


class UnboundedQueue:
    """Service-side queues must be bounded.

    The campaign service is a long-lived server: an
    ``asyncio.Queue()`` / ``queue.Queue()`` constructed without a
    ``maxsize`` inside ``src/repro/service/`` grows without limit under
    a fast producer, turning client pressure into server memory
    exhaustion instead of an explicit 503.  Admission control
    (:class:`repro.service.queue.JobQueue`'s bounded buffer) is the
    contract; every queue there must declare its bound.  Other layers
    (e.g. the finite event relay in ``api/handle.py``) drain a known
    number of items and stay exempt.
    """

    rule_id = "no-unbounded-queue"
    summary = ("queue constructors in src/repro/service/ must pass an "
               "explicit maxsize bound")
    service_prefix = "src/repro/service/"
    _queue_types = frozenset({
        "asyncio.Queue", "asyncio.LifoQueue", "asyncio.PriorityQueue",
        "asyncio.queues.Queue",
        "queue.Queue", "queue.LifoQueue", "queue.PriorityQueue",
        "queue.SimpleQueue",
        "multiprocessing.Queue", "multiprocessing.SimpleQueue",
    })

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if not module.relpath.startswith(self.service_prefix):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                canonical = module.resolve(node.func)
                if canonical not in self._queue_types:
                    continue
                if self._bounded(node):
                    continue
                yield from _finding(
                    module, node, self.rule_id,
                    f"{canonical}() without maxsize is unbounded; a "
                    "long-lived server must refuse work explicitly "
                    "(bounded queue -> 503) instead of buffering until "
                    "memory runs out")

    @staticmethod
    def _bounded(node: ast.Call) -> bool:
        """True when a positive bound is passed (positionally or as
        ``maxsize=``).  A literal ``0``/``None`` bound — queue-speak for
        "infinite" — counts as unbounded."""
        candidates = list(node.args[:1]) + [kw.value for kw in node.keywords
                                            if kw.arg == "maxsize"]
        if not candidates:
            return False
        bound = candidates[0]
        if isinstance(bound, ast.Constant) and bound.value in (0, None):
            return False
        return True


class SeedThreading:
    """Functions that accept randomness must actually use it.

    A public function taking an ``rng`` parameter that constructs its
    own generator ignores the caller's seeded stream; one taking
    ``seed`` must thread that seed into any generator it builds.
    Applies to ``src/`` only — tests legitimately build multiple
    generators to compare seeds.
    """

    rule_id = "seed-threading"
    summary = ("public functions taking rng/seed must not construct an "
               "independent generator")
    _constructors = frozenset({"numpy.random.default_rng",
                               "numpy.random.Generator"})

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if not module.relpath.startswith("src/"):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, _FUNCTION_NODES):
                    continue
                if node.name.startswith("_"):
                    continue
                params = _param_names(node)
                if "rng" in params:
                    yield from self._check_rng_function(module, node)
                elif "seed" in params:
                    yield from self._check_seed_function(module, node)

    def _generator_calls(self, module: Module,
                         function: ast.AST) -> Iterator[ast.Call]:
        for node in _walk_own_scope(function):
            if (isinstance(node, ast.Call)
                    and module.resolve(node.func) in self._constructors):
                yield node

    def _check_rng_function(self, module: Module,
                            function: ast.FunctionDef
                            | ast.AsyncFunctionDef) -> Iterator[Finding]:
        for call in self._generator_calls(module, function):
            yield from _finding(
                module, call, self.rule_id,
                f"{function.name}() takes an rng parameter but "
                "constructs its own generator, ignoring the caller's "
                "seeded stream")

    def _check_seed_function(self, module: Module,
                             function: ast.FunctionDef
                             | ast.AsyncFunctionDef) -> Iterator[Finding]:
        for call in self._generator_calls(module, function):
            mentions_seed = any(
                isinstance(leaf, ast.Name) and leaf.id == "seed"
                for arg in (*call.args, *(kw.value for kw in call.keywords))
                for leaf in ast.walk(arg))
            if not mentions_seed:
                yield from _finding(
                    module, call, self.rule_id,
                    f"{function.name}() takes a seed parameter but "
                    "constructs a generator without threading it "
                    "through")


DEFAULT_RULES: tuple[Rule, ...] = (
    NoGlobalRng(), NoWallClock(), ShmLifecycle(), NoSilentExcept(),
    FrozenRecords(), EventExhaustiveness(), NoUnpicklableSubmit(),
    UnboundedQueue(), SeedThreading(),
)
