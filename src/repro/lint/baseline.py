"""Grandfathered findings: the committed lint baseline.

The baseline lets the checker gate *new* violations while pre-existing
ones are burned down incrementally.  Entries waive findings by
``(rule, path, count)`` — deliberately not by line number, so unrelated
edits that shift lines never resurrect a waived finding, and deliberately
bounded by ``count`` so a file cannot silently accumulate more
violations under an old waiver.

Format (``lint-baseline.json`` at the repository root)::

    {"version": 1,
     "entries": [{"rule": "no-wall-clock",
                  "path": "tests/test_example.py",
                  "count": 2}]}

``repro lint --write-baseline`` regenerates the file from the current
findings; entries that no longer match anything are reported as stale so
they get pruned rather than lingering.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from .findings import Finding
from .project import LintUsageError

__all__ = ["Baseline", "BaselineEntry", "load_baseline", "write_baseline"]

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """Waive up to ``count`` findings of ``rule`` in ``path``."""

    rule: str
    path: str
    count: int = 1

    def key(self) -> tuple[str, str]:
        return (self.rule, self.path)


@dataclass
class Baseline:
    """The parsed baseline plus the bookkeeping of one lint run."""

    entries: list[BaselineEntry]

    def apply(self, findings: list[Finding]
              ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Split findings into (active, waived); also return the stale
        entries whose budget was not fully consumed.  An entry matching
        *fewer* findings than its count is stale too — a burned-down
        violation must tighten the baseline, not leave slack a future
        regression could hide in.  Unwaivable findings (cross-module
        contracts) are never absorbed."""
        budget = Counter({entry.key(): entry.count
                          for entry in self.entries})
        active: list[Finding] = []
        waived: list[Finding] = []
        for finding in findings:
            key = (finding.rule, finding.path)
            if finding.waivable and budget[key] > 0:
                budget[key] -= 1
                waived.append(finding)
            else:
                active.append(finding)
        used = Counter((f.rule, f.path) for f in waived)
        stale = [entry for entry in self.entries
                 if used[entry.key()] < entry.count]
        return active, waived, stale


def load_baseline(path: Path | None) -> Baseline:
    """Parse a baseline file; a missing optional file is empty."""
    if path is None or not path.exists():
        return Baseline(entries=[])
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise LintUsageError(f"malformed baseline {path}: {error}") from error
    if (not isinstance(payload, dict)
            or payload.get("version") != _VERSION
            or not isinstance(payload.get("entries"), list)):
        raise LintUsageError(
            f"malformed baseline {path}: expected "
            f'{{"version": {_VERSION}, "entries": [...]}}')
    entries: list[BaselineEntry] = []
    for raw in payload["entries"]:
        if (not isinstance(raw, dict)
                or not isinstance(raw.get("rule"), str)
                or not isinstance(raw.get("path"), str)
                or not isinstance(raw.get("count", 1), int)
                or raw.get("count", 1) < 1):
            raise LintUsageError(
                f"malformed baseline entry in {path}: {raw!r}")
        entries.append(BaselineEntry(rule=raw["rule"], path=raw["path"],
                                     count=raw.get("count", 1)))
    return Baseline(entries=entries)


def write_baseline(path: Path, findings: list[Finding]) -> int:
    """Write a baseline waiving every current waivable finding; returns
    the number of entries written."""
    counts = Counter((f.rule, f.path) for f in findings if f.waivable)
    entries = [{"rule": rule, "path": relpath, "count": count}
               for (rule, relpath), count in sorted(counts.items())]
    payload = {"version": _VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
