"""Run the rules, apply suppressions and the baseline, report.

:func:`run_lint` is the library entry point (used by the tests and the
docs snippet); :func:`lint_command` implements the shared CLI semantics
behind both ``repro lint`` and ``python -m repro.lint`` with the
repository's uniform exit codes:

* ``0`` — no active findings;
* ``1`` — at least one active finding (the build should fail);
* ``2`` — usage/validation error (unknown path, malformed baseline,
  raised as :class:`LintUsageError`) **or** an unparsable checked file —
  the latter is also reported as an unwaivable ``syntax-error`` finding
  so it shows up in ``--json`` artifacts instead of vanishing from the
  walk.

``--changed`` scopes the run to the files git reports as modified
(versus ``HEAD`` or a given base ref) plus untracked files, so the gate
runs in seconds pre-commit while CI keeps the full-tree run.
"""

from __future__ import annotations

import json
import subprocess
import sys
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TextIO

from .baseline import Baseline, BaselineEntry, load_baseline, write_baseline
from .findings import Finding, Rule
from .project import LintUsageError, load_project
from .rules import DEFAULT_RULES

__all__ = ["LintResult", "changed_files", "lint_command", "run_lint"]

#: what a bare ``repro lint`` scans, relative to the root
DEFAULT_PATHS = ("src", "tests")
#: the committed grandfather file, relative to the root
BASELINE_NAME = "lint-baseline.json"
#: pseudo-rule id for unparsable checked files (unwaivable, exit 2)
SYNTAX_RULE = "syntax-error"


@dataclass
class LintResult:
    """Everything one lint pass determined."""

    #: findings that fail the build (not suppressed, not waived)
    findings: list[Finding] = field(default_factory=list)
    #: findings absorbed by baseline entries
    waived: list[Finding] = field(default_factory=list)
    #: baseline entries with unconsumed budget (should be tightened)
    stale_entries: list[BaselineEntry] = field(default_factory=list)
    #: number of files parsed
    files: int = 0
    #: number of checked files the parser rejected
    syntax_errors: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def run_lint(paths: Sequence[Path | str], root: Path | str | None = None,
             rules: Sequence[Rule] = DEFAULT_RULES,
             baseline: Baseline | None = None) -> LintResult:
    """Lint ``paths`` (files or directories) against ``rules``.

    ``root`` anchors the relative paths that rules, suppressions, and
    baseline entries are keyed on; it defaults to the current working
    directory.  Inline ``# repro: allow[rule-id]`` suppressions are
    honored inside the rules themselves; the ``baseline`` (if given)
    then absorbs grandfathered findings.  A checked file that fails to
    parse becomes an unwaivable ``syntax-error`` finding — never a
    silent skip.
    """
    root = Path(root) if root is not None else Path.cwd()
    project = load_project([Path(p) for p in paths], root)
    findings: list[Finding] = [
        Finding(path=failure.relpath, line=failure.line, rule=SYNTAX_RULE,
                message=f"cannot parse file: {failure.message}; the rules "
                        "did not run on it", waivable=False)
        for failure in project.failures]
    for rule in rules:
        findings.extend(rule.check(project))
    findings.sort()
    result = LintResult(files=len(project.modules),
                        syntax_errors=len(project.failures))
    if baseline is None:
        baseline = Baseline(entries=[])
    result.findings, result.waived, result.stale_entries = (
        baseline.apply(findings))
    return result


def changed_files(root: Path, base: str = "HEAD") -> list[Path]:
    """Python files git reports as changed versus ``base``, plus
    untracked ones — the ``--changed`` scope."""
    commands = (["git", "diff", "--name-only", "-z", base, "--"],
                ["git", "ls-files", "--others", "--exclude-standard", "-z"])
    names: set[str] = set()
    for command in commands:
        try:
            proc = subprocess.run(command, cwd=root, capture_output=True,
                                  text=True, check=True)
        except (OSError, subprocess.CalledProcessError) as error:
            detail = (error.stderr.strip()
                      if isinstance(error, subprocess.CalledProcessError)
                      and error.stderr else str(error))
            raise LintUsageError(
                f"--changed needs a git checkout at {root}: "
                f"{detail}") from error
        names.update(part for part in proc.stdout.split("\0") if part)
    return sorted(root / name for name in names
                  if name.endswith(".py") and (root / name).is_file())


def lint_command(paths: Sequence[str] = (), *,
                 root: Path | str | None = None,
                 baseline: str | None = None,
                 update_baseline: bool = False,
                 list_rules: bool = False,
                 json_output: bool = False,
                 changed: str | None = None,
                 rules: Sequence[Rule] = DEFAULT_RULES,
                 stdout: TextIO | None = None) -> int:
    """The ``repro lint`` subcommand body; returns the exit code."""
    out = stdout if stdout is not None else sys.stdout
    if list_rules:
        for rule in rules:
            print(f"{rule.rule_id:24s} {rule.summary}", file=out)
        return 0
    root = Path(root) if root is not None else Path.cwd()
    if changed is not None:
        if paths:
            raise LintUsageError(
                "--changed computes the file list from git; explicit "
                "paths cannot be combined with it")
        scan: list[Path] = changed_files(root, changed)
        if not scan:
            print(f"no python files changed vs {changed}: OK", file=out)
            return 0
    else:
        scan = ([Path(p) for p in paths] if paths
                else [root / p for p in DEFAULT_PATHS
                      if (root / p).exists()])
    if not scan:
        raise LintUsageError(
            f"nothing to lint: no paths given and {root} contains none of "
            f"{'/'.join(DEFAULT_PATHS)}")
    baseline_path = (Path(baseline) if baseline is not None
                     else root / BASELINE_NAME)
    if update_baseline:
        result = run_lint(scan, root=root, rules=rules)
        count = write_baseline(baseline_path, result.findings)
        print(f"wrote {baseline_path} with {count} grandfathered "
              f"entr{'y' if count == 1 else 'ies'}", file=out)
        unwaivable = [f for f in result.findings if not f.waivable]
        for finding in unwaivable:
            print(finding.render(), file=out)
        if result.syntax_errors:
            return 2
        return 1 if unwaivable else 0
    result = run_lint(scan, root=root, rules=rules,
                      baseline=load_baseline(baseline_path))
    if json_output:
        payload = {
            "files": result.files,
            "syntax_errors": result.syntax_errors,
            "findings": [f.to_dict() for f in result.findings],
            "waived": len(result.waived),
            "stale_baseline_entries": [
                {"rule": e.rule, "path": e.path, "count": e.count}
                for e in result.stale_entries],
        }
        print(json.dumps(payload, indent=2), file=out)
        return _exit_code(result)
    for finding in result.findings:
        print(finding.render(), file=out)
    used = Counter((f.rule, f.path) for f in result.waived)
    for entry in result.stale_entries:
        matched = used[entry.key()]
        print(f"note: stale baseline entry should be tightened: "
              f"{entry.rule} in {entry.path} allows {entry.count} but "
              f"matched {matched}", file=out)
    summary = (f"checked {result.files} files: "
               + ("OK" if result.ok
                  else f"{len(result.findings)} finding(s)"))
    if result.waived:
        summary += f" ({len(result.waived)} waived by baseline)"
    print(summary, file=out)
    return _exit_code(result)


def _exit_code(result: LintResult) -> int:
    if result.syntax_errors:
        return 2
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.lint`` entry point (argparse + exit codes)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checker for the repro codebase")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/ and tests/ under --root)")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="repository root that relative paths, "
                             "baseline entries, and per-module rules are "
                             "keyed on (default: cwd)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help=f"baseline file (default: <root>/"
                             f"{BASELINE_NAME} when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="regenerate the baseline file waiving every "
                             "current finding, then exit")
    parser.add_argument("--changed", nargs="?", const="HEAD", default=None,
                        metavar="BASE",
                        help="lint only python files git reports changed "
                             "vs BASE (default HEAD) plus untracked ones")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable findings on stdout")
    args = parser.parse_args(argv)
    try:
        return lint_command(args.paths, root=args.root,
                            baseline=args.baseline,
                            update_baseline=args.write_baseline,
                            list_rules=args.list_rules,
                            json_output=args.json,
                            changed=args.changed)
    except LintUsageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
