"""``repro.lint`` — AST-based invariant checker for this repository.

Mechanically enforces the contracts the reproduction's trustworthiness
rests on: seeded-RNG determinism, shared-memory lifecycle, typed failure
routing, frozen protocol records, and event-protocol exhaustiveness.
See ``docs/static-analysis.md`` for the rule catalog, the
``# repro: allow[rule-id]`` suppression syntax, and the baseline
workflow; run it as ``repro lint`` or ``python -m repro.lint``.

The package deliberately has no numpy/engine dependencies — it parses
the tree with :mod:`ast` and never imports the code under check.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry, load_baseline, write_baseline
from .findings import Finding, Rule
from .project import LintUsageError, Module, Project, load_project
from .rules import (DEFAULT_RULES, EventExhaustiveness, FrozenRecords,
                    NoGlobalRng, NoSilentExcept, NoUnpicklableSubmit,
                    NoWallClock, SeedThreading, ShmLifecycle,
                    UnboundedQueue)
from .runner import LintResult, lint_command, main, run_lint

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_RULES",
    "EventExhaustiveness",
    "Finding",
    "FrozenRecords",
    "LintResult",
    "LintUsageError",
    "Module",
    "NoGlobalRng",
    "NoSilentExcept",
    "NoUnpicklableSubmit",
    "NoWallClock",
    "Project",
    "Rule",
    "SeedThreading",
    "ShmLifecycle",
    "UnboundedQueue",
    "lint_command",
    "load_baseline",
    "load_project",
    "main",
    "run_lint",
    "write_baseline",
]
