"""``repro.lint`` — AST-based invariant checker for this repository.

Mechanically enforces the contracts the reproduction's trustworthiness
rests on: seeded-RNG determinism, shared-memory lifecycle, typed failure
routing, frozen protocol records, and event-protocol exhaustiveness.
Since PR 10 the lifecycle/determinism rules are *flow-sensitive*: they
reason over intraprocedural CFGs (:mod:`repro.lint.cfg`) with reaching
definitions and taint propagation (:mod:`repro.lint.flow`), so a
violation is a provable path, not a missing keyword nearby.
See ``docs/static-analysis.md`` for the rule catalog, the
``# repro: allow[rule-id]`` suppression syntax, and the baseline
workflow; run it as ``repro lint`` or ``python -m repro.lint``.

The package deliberately has no numpy/engine dependencies — it parses
the tree with :mod:`ast` and never imports the code under check.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry, load_baseline, write_baseline
from .cfg import CFG, CFGNode, build_cfg, iter_scopes
from .findings import Finding, Rule
from .flow import propagate_taint, reaching_definitions, use_def
from .project import (LintUsageError, Module, ParseFailure, Project,
                      load_project)
from .rules import (DEFAULT_RULES, EventExhaustiveness, FrozenRecords,
                    JournalOrder, NoGlobalRng, NoSilentExcept,
                    NoUnpicklableSubmit, NoWallClock, ObsPickleBoundary,
                    ProtocolDrift, RngTaint, ShmLeakPath, UnboundedQueue)
from .runner import LintResult, changed_files, lint_command, main, run_lint

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CFG",
    "CFGNode",
    "DEFAULT_RULES",
    "EventExhaustiveness",
    "Finding",
    "FrozenRecords",
    "JournalOrder",
    "LintResult",
    "LintUsageError",
    "Module",
    "NoGlobalRng",
    "NoSilentExcept",
    "NoUnpicklableSubmit",
    "NoWallClock",
    "ObsPickleBoundary",
    "ParseFailure",
    "Project",
    "ProtocolDrift",
    "RngTaint",
    "Rule",
    "ShmLeakPath",
    "UnboundedQueue",
    "build_cfg",
    "changed_files",
    "iter_scopes",
    "lint_command",
    "load_baseline",
    "load_project",
    "main",
    "propagate_taint",
    "reaching_definitions",
    "run_lint",
    "use_def",
    "write_baseline",
]
