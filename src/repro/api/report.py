"""The typed result half of the API: what a run produced.

A :class:`RunReport` normalizes every experiment's output into one
schema: per-series sweep curves (:class:`SeriesReport`), free-form
table payloads (Table I/II, the Fig. 4f runtime comparison), the
engine/meta bookkeeping, and the artifact paths the run wrote (report
JSON, journals).  ``raw`` keeps the experiment's native result object
(:class:`~repro.core.campaign.SweepResult` dicts,
:class:`~repro.scenarios.run.ScenarioResult`, ...) for callers that
need exact arrays — it is excluded from serialization.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SeriesReport", "RunReport", "atomic_write_text",
           "series_from_sweeps"]


def atomic_write_text(path: Path | str, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A reader (or a crash) can only ever observe the old complete file or
    the new complete file, never a torn prefix — the contract
    ``repro run --out`` and the service job store rely on.  The
    temporary sibling is removed if the write fails part-way.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path

#: bump when the serialized layout changes incompatibly
SCHEMA_VERSION = 1


@dataclass
class SeriesReport:
    """One plottable curve: the (x, mean, std) triples a figure draws.

    ``baseline`` is this series' own fault-free accuracy — for
    multi-model experiments (fig5) every model has its own, while
    :attr:`RunReport.baseline` records only the first series' value as
    the run-level reference.
    """

    label: str
    xs: list[float]
    mean: list[float]
    std: list[float]
    baseline: float | None = None

    def to_dict(self) -> dict:
        payload = {"label": self.label, "xs": list(self.xs),
                   "mean": list(self.mean), "std": list(self.std)}
        if self.baseline is not None:
            payload["baseline"] = self.baseline
        return payload


@dataclass
class RunReport:
    """The normalized result of one experiment run."""

    experiment: str
    params: dict = field(default_factory=dict)
    engine: dict = field(default_factory=dict)
    series: list[SeriesReport] = field(default_factory=list)
    tables: dict = field(default_factory=dict)
    baseline: float | None = None
    meta: dict = field(default_factory=dict)
    artifacts: dict = field(default_factory=dict)
    #: the experiment's native result object (not serialized)
    raw: object = field(default=None, repr=False, compare=False)

    def series_labels(self) -> list[str]:
        return [series.label for series in self.series]

    def get_series(self, label: str) -> SeriesReport:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series {label!r}; have {self.series_labels()}")

    def to_dict(self) -> dict:
        """JSON-able form (``raw`` excluded)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "experiment": self.experiment,
            "params": _jsonable(self.params),
            "engine": _jsonable(self.engine),
            "baseline": self.baseline,
            "series": [series.to_dict() for series in self.series],
            "tables": _jsonable(self.tables),
            "meta": _jsonable(self.meta),
            "artifacts": dict(self.artifacts),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path) -> Path:
        """Write the report JSON to ``path`` and record it as the
        ``report`` artifact.

        The write is atomic (:func:`atomic_write_text`): a crash while
        serializing or writing can never leave a torn half-report at
        ``path`` — an existing file keeps its previous complete content.
        """
        path = atomic_write_text(path, self.to_json() + "\n")
        self.artifacts["report"] = str(path)
        return path


def series_from_sweeps(results: dict) -> list[SeriesReport]:
    """Normalize ``{label: SweepResult}`` into :class:`SeriesReport`
    rows (the shape every figure runner returns)."""
    import math
    series = []
    for label, result in results.items():
        baseline = float(result.baseline)
        series.append(SeriesReport(
            label=label,
            xs=[float(x) for x in result.xs],
            mean=[float(m) for m in result.mean()],
            std=[float(s) for s in result.std()],
            baseline=None if math.isnan(baseline) else baseline))
    return series


def _jsonable(value):
    """Best-effort conversion of meta payloads to JSON-able values."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Path):
        return str(value)
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()  # numpy scalars
        except (AttributeError, TypeError, ValueError):
            pass  # a non-numpy .item (dict-like) or a multi-element array
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
