"""Typed events streamed by a :class:`~repro.api.handle.RunHandle`.

One experiment run emits a single ordered stream that every consumer —
CLI progress renderer, journals, benchmarks, tests — reads the same
way:

``RunStarted``
    Emitted once, before any evaluation.
``CellDone``
    One fresh campaign-grid cell finished.  ``done``/``total`` count
    cells *within the named series* (a Fig. 4 layer curve, a Fig. 5
    model, a scenario grid); cells replayed from a resumed journal are
    never re-emitted, matching the engine's ``progress`` contract.
``CheckpointDone``
    Scenario runs only: every cell of one device-age checkpoint
    (all episodes × repetitions) has completed.
``RunWarning``
    A non-fatal condition worth surfacing — e.g. a pool executor
    falling back to the in-process serial loop because the job grid
    cannot use its workers.
``RunFinished``
    Emitted once, after the :class:`~repro.api.report.RunReport` is
    assembled; carries the report.

Events are frozen dataclasses: consumers dispatch on type and read
fields, nothing mutates mid-stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RunEvent", "RunStarted", "CellDone", "CheckpointDone",
           "RunWarning", "RunFinished"]


@dataclass(frozen=True)
class RunEvent:
    """Base class of every streamed event (useful for isinstance gates)."""


@dataclass(frozen=True)
class RunStarted(RunEvent):
    """The run is about to start evaluating."""

    experiment: str
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CellDone(RunEvent):
    """One freshly evaluated campaign cell.

    ``series`` names the curve the cell belongs to (layer, model,
    scenario); ``done``/``total`` are per-series cell counts; ``point``/
    ``repeat`` are the cell's grid coordinates; ``accuracy`` its result.
    """

    series: str
    done: int
    total: int
    point: int
    repeat: int
    accuracy: float


@dataclass(frozen=True)
class CheckpointDone(RunEvent):
    """All cells of one scenario device-age checkpoint completed."""

    index: int
    total: int
    age: float


@dataclass(frozen=True)
class RunWarning(RunEvent):
    """A non-fatal condition the consumer should surface."""

    message: str


@dataclass(frozen=True)
class RunFinished(RunEvent):
    """The run completed; ``report`` is the assembled RunReport."""

    report: object
