"""Typed events streamed by a :class:`~repro.api.handle.RunHandle`.

One experiment run emits a single ordered stream that every consumer —
CLI progress renderer, journals, benchmarks, tests — reads the same
way:

``RunStarted``
    Emitted once, before any evaluation.
``CellDone``
    One fresh campaign-grid cell finished.  ``done``/``total`` count
    cells *within the named series* (a Fig. 4 layer curve, a Fig. 5
    model, a scenario grid); cells replayed from a resumed journal are
    never re-emitted, matching the engine's ``progress`` contract.
``CheckpointDone``
    Scenario runs only: every cell of one device-age checkpoint
    (all episodes × repetitions) has completed.
``RunWarning``
    A non-fatal condition worth surfacing — e.g. a pool executor
    falling back to the in-process serial loop because the job grid
    cannot use its workers.
``JobRetried`` / ``JobQuarantined`` / ``WorkerLost`` / ``ExecutorDegraded``
    Resilience events mirrored from the engine's supervision layer
    (:mod:`repro.core.resilience`): a failed or timed-out cell being
    retried with backoff; a poison cell quarantined (its accuracy is
    NaN) after exhausting its attempts; a pool worker lost and the pool
    rebuilt; the executor stepping down its degradation ladder.
``JobStateChanged``
    Service runs only (:mod:`repro.service`): the submitted job moved
    through its lifecycle (queued → running → done/failed/cancelled).
    Direct :class:`~repro.api.handle.RunHandle` runs never emit it.
``TelemetrySnapshot``
    The run's telemetry summary (:mod:`repro.obs`): per-phase span
    totals, counters, and gauges — the same data stored in
    ``RunReport.meta["telemetry"]``.  Emitted once, just before
    ``RunFinished``.  Phase durations are clock readings, so two
    otherwise identical runs differ here (and only here).
``RunFinished``
    Emitted once, after the :class:`~repro.api.report.RunReport` is
    assembled; carries the report.

Events are frozen dataclasses: consumers dispatch on type and read
fields, nothing mutates mid-stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["RunEvent", "RunStarted", "CellDone", "CheckpointDone",
           "RunWarning", "JobRetried", "JobQuarantined", "WorkerLost",
           "ExecutorDegraded", "JobStateChanged", "TelemetrySnapshot",
           "RunFinished"]


@dataclass(frozen=True)
class RunEvent:
    """Base class of every streamed event (useful for isinstance gates)."""


@dataclass(frozen=True)
class RunStarted(RunEvent):
    """The run is about to start evaluating."""

    experiment: str
    params: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CellDone(RunEvent):
    """One freshly evaluated campaign cell.

    ``series`` names the curve the cell belongs to (layer, model,
    scenario); ``done``/``total`` are per-series cell counts; ``point``/
    ``repeat`` are the cell's grid coordinates; ``accuracy`` its result.
    """

    series: str
    done: int
    total: int
    point: int
    repeat: int
    accuracy: float


@dataclass(frozen=True)
class CheckpointDone(RunEvent):
    """All cells of one scenario device-age checkpoint completed."""

    index: int
    total: int
    age: float


@dataclass(frozen=True)
class RunWarning(RunEvent):
    """A non-fatal condition the consumer should surface."""

    message: str


@dataclass(frozen=True)
class JobRetried(RunEvent):
    """A cell's attempt failed (``cause`` is ``"error"`` or
    ``"timeout"``); it retries after ``delay`` seconds."""

    point: int
    repeat: int
    attempt: int
    delay: float
    cause: str
    error: str


@dataclass(frozen=True)
class JobQuarantined(RunEvent):
    """A cell exhausted its attempts; its accuracy is NaN and the run
    continues without it."""

    point: int
    repeat: int
    attempts: int
    error: str


@dataclass(frozen=True)
class WorkerLost(RunEvent):
    """A pool worker died (or the pool stalled); the pool was rebuilt
    and the ``in_flight`` affected cells re-dispatched."""

    reason: str
    in_flight: int


@dataclass(frozen=True)
class ExecutorDegraded(RunEvent):
    """The executor stepped down its degradation ladder; remaining
    cells run in ``to_mode`` with bit-identical results."""

    from_mode: str
    to_mode: str
    reason: str


@dataclass(frozen=True)
class JobStateChanged(RunEvent):
    """A service job moved through its lifecycle (queued → running →
    done/failed/cancelled); ``error`` is non-empty for failed jobs."""

    job_id: str
    state: str
    error: str = ""


@dataclass(frozen=True)
class TelemetrySnapshot(RunEvent):
    """The run's telemetry summary (see :mod:`repro.obs`): ``phases``
    maps span names to total seconds, ``counters``/``gauges`` mirror the
    run's metrics registry.  Identical to
    ``RunReport.meta["telemetry"]``."""

    phases: dict[str, float]
    counters: dict[str, float]
    gauges: dict[str, float]


@dataclass(frozen=True)
class RunFinished(RunEvent):
    """The run completed; ``report`` is the assembled RunReport."""

    report: object
