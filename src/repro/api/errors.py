"""The one exception type of the :mod:`repro.api` surface.

Every *user-input* problem — unknown experiment name, unknown or
malformed parameter, invalid engine option, a journal that must not be
overwritten — raises :class:`ApiError`.  It subclasses
:class:`ValueError` so it folds into the repository-wide convention the
CLI relies on: validation errors exit with status 2, runtime failures
with status 1.
"""

from __future__ import annotations

__all__ = ["ApiError"]


class ApiError(ValueError):
    """A request to the experiment registry is malformed."""
