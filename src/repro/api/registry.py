"""The experiment registry: every workload as one introspectable entry.

An :class:`Experiment` couples a runner function with *declared*,
typed parameters.  The registry is the single place new workloads plug
into — the CLI (``repro run/list/describe``), the benchmarks, and the
docs all read the same metadata, so registering an entry is the whole
integration:

>>> @experiment("demo", params=[Param("rate", "float", 0.1)])
... def demo(ctx, rate):
...     ...
...     return ctx.report(...)

Runner contract: ``func(ctx, **params)`` where ``ctx`` is the
:class:`~repro.api.handle.RunContext` (engine options, event emission,
journal paths) and ``params`` are the fully resolved, validated values.
The function returns the :class:`~repro.api.report.RunReport` built via
``ctx.report(...)``.

Validation is strict in the spirit of :mod:`repro.scenarios.spec`:
duplicate registrations, unknown experiment names, unknown parameters,
and uncoercible values all raise :class:`~repro.api.errors.ApiError`
(the CLI maps those to exit status 2).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from .errors import ApiError

__all__ = ["Param", "Experiment", "ExperimentRegistry", "REGISTRY",
           "experiment"]

#: scalar coercions per parameter kind
_SCALARS = {"int": int, "float": float, "str": str}
#: list kinds and their element coercions
_LISTS = {"ints": int, "floats": float, "strs": str}
_BOOL_TRUE = ("true", "1", "yes", "on")
_BOOL_FALSE = ("false", "0", "no", "off")


@dataclass(frozen=True)
class Param:
    """One declared experiment parameter.

    ``kind`` is one of ``int`` / ``float`` / ``bool`` / ``str`` (scalars)
    or ``ints`` / ``floats`` / ``strs`` (comma-separated lists on the
    CLI).  :meth:`parse` coerces both CLI strings and library values;
    :meth:`format` renders a value back into the exact string
    ``repro run --param name=value`` accepts, so ``repro describe``
    output round-trips.
    """

    name: str
    kind: str
    default: object = None
    help: str = ""
    choices: tuple | None = None

    def __post_init__(self):
        if self.kind not in _SCALARS and self.kind not in _LISTS \
                and self.kind != "bool":
            raise ApiError(f"param {self.name!r}: unknown kind "
                           f"{self.kind!r}")

    def parse(self, value):
        """Coerce ``value`` (CLI string or library object) to this kind."""
        try:
            parsed = self._coerce(value)
        except (TypeError, ValueError):
            raise ApiError(
                f"param {self.name!r}: cannot read {value!r} as "
                f"{self.kind}") from None
        if self.choices is not None and parsed is not None \
                and parsed not in self.choices:
            raise ApiError(f"param {self.name!r}: {parsed!r} is not one of "
                           f"{list(self.choices)}")
        return parsed

    def _coerce(self, value):
        if value is None:
            return None
        if self.kind == "bool":
            if isinstance(value, bool):
                return value
            text = str(value).strip().lower()
            if text in _BOOL_TRUE:
                return True
            if text in _BOOL_FALSE:
                return False
            raise ValueError(text)
        if self.kind in _LISTS:
            element = _LISTS[self.kind]
            if isinstance(value, str):
                parts = [part for part in value.split(",") if part != ""]
                return [element(part) for part in parts]
            return [element(item) for item in value]
        return _SCALARS[self.kind](value)

    def format(self, value) -> str:
        """Render ``value`` as the CLI's ``--param name=value`` text."""
        if self.kind == "bool":
            return "true" if value else "false"
        if self.kind in _LISTS:
            return ",".join(str(item) for item in value)
        return str(value)


@dataclass(frozen=True)
class Experiment:
    """One registry entry: runner + declared parameters + metadata."""

    name: str
    func: Callable
    params: tuple[Param, ...] = ()
    description: str = ""
    supports_journal: bool = False
    #: parameter overrides selected by ``RunRequest(quick=True)`` /
    #: ``repro run --quick`` — the tiny smoke-test configuration
    quick: Mapping = field(default_factory=dict)
    aliases: tuple[str, ...] = ()

    def __post_init__(self):
        declared = {param.name for param in self.params}
        unknown = sorted(set(self.quick) - declared)
        if unknown:
            raise ApiError(f"experiment {self.name!r}: quick overrides "
                           f"{unknown} are not declared params")

    def param(self, name: str) -> Param:
        for param in self.params:
            if param.name == name:
                return param
        raise ApiError(
            f"experiment {self.name!r} has no param {name!r}; "
            f"declared: {[p.name for p in self.params]}")

    def resolve(self, user: Mapping | None, quick: bool = False) -> dict:
        """Defaults (+ quick overrides), then validated user values."""
        user = dict(user or {})
        resolved = {param.name: param.default for param in self.params}
        if quick:
            resolved.update(self.quick)
        declared = {param.name for param in self.params}
        unknown = sorted(set(user) - declared)
        if unknown:
            raise ApiError(
                f"experiment {self.name!r}: unknown param(s) {unknown}; "
                f"declared: {sorted(declared)}")
        for name, value in user.items():
            resolved[name] = self.param(name).parse(value)
        return resolved


class ExperimentRegistry:
    """Name → :class:`Experiment` mapping with alias resolution."""

    def __init__(self):
        self._entries: dict[str, Experiment] = {}
        self._aliases: dict[str, str] = {}

    def register(self, entry: Experiment) -> Experiment:
        for name in (entry.name, *entry.aliases):
            if name in self._entries or name in self._aliases:
                raise ApiError(
                    f"experiment name {name!r} is already registered; "
                    "pick a unique name")
        self._entries[entry.name] = entry
        for alias in entry.aliases:
            self._aliases[alias] = entry.name
        return entry

    def unregister(self, name: str) -> None:
        canonical = self._aliases.get(name, name)
        entry = self._entries.pop(canonical, None)
        if entry is None:
            raise ApiError(f"unknown experiment {name!r}")
        for alias in entry.aliases:
            self._aliases.pop(alias, None)

    def get(self, name: str) -> Experiment:
        canonical = self._aliases.get(name, name)
        entry = self._entries.get(canonical)
        if entry is None:
            raise ApiError(
                f"unknown experiment {name!r}; registered: {self.names()} "
                "(see: repro list)")
        return entry

    def names(self) -> list[str]:
        """Sorted canonical names (aliases excluded)."""
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries or name in self._aliases

    def __iter__(self):
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def describe(self, name: str) -> dict:
        """JSON-able metadata of one entry (what ``repro describe``
        prints): declared params with kinds/defaults/help, quick
        overrides, journal support."""
        entry = self.get(name)
        return {
            "name": entry.name,
            "aliases": list(entry.aliases),
            "description": entry.description,
            "supports_journal": entry.supports_journal,
            "quick": dict(entry.quick),
            "params": [
                {"name": param.name, "kind": param.kind,
                 "default": param.default, "help": param.help,
                 **({"choices": list(param.choices)}
                    if param.choices is not None else {})}
                for param in entry.params],
        }


#: the process-wide default registry every built-in experiment joins
REGISTRY = ExperimentRegistry()


def experiment(name: str, *, params: Sequence[Param] = (),
               description: str = "", supports_journal: bool = False,
               quick: Mapping | None = None, aliases: Sequence[str] = (),
               registry: ExperimentRegistry | None = None):
    """Decorator registering a runner function as a named experiment.

    ``description`` defaults to the first line of the function's
    docstring.  Pass ``registry=`` to register somewhere other than the
    process-wide :data:`REGISTRY` (tests do).
    """
    def decorate(func):
        doc = (func.__doc__ or "").strip()
        entry = Experiment(
            name=name, func=func, params=tuple(params),
            description=description or (doc.splitlines()[0] if doc else ""),
            supports_journal=supports_journal,
            quick=dict(quick or {}), aliases=tuple(aliases))
        (registry if registry is not None else REGISTRY).register(entry)
        func.experiment = entry
        return func
    return decorate
