"""repro.api — the one typed entry point over the campaign engine.

Every workload in the repository is a named entry in one
:class:`~repro.api.registry.ExperimentRegistry`: the paper's figure and
table drivers, the ad-hoc sweep, and the scenario zoo.  A run is a
:class:`RunRequest` (experiment + validated params + engine options),
executed through a :class:`RunHandle` that streams typed events
(:class:`CellDone`, :class:`CheckpointDone`, :class:`RunWarning`), and
lands as a :class:`RunReport` (normalized series, tables, meta,
artifact paths):

>>> from repro import api
>>> report = api.run("fig4a", params={"rates": [0.0, 0.2],
...                                   "repeats": 2, "images": 60})
>>> report.get_series("combined").mean
[...]

Streaming consumption::

    handle = api.submit(api.RunRequest("end-of-life",
                                       params={"repeats": 2},
                                       executor="shared_memory", n_jobs=4,
                                       backend="packed",
                                       journal="eol.jsonl"))
    handle.subscribe(print)          # CellDone / CheckpointDone / ...
    report = handle.run()

New workloads register with the :func:`experiment` decorator instead of
growing a new module-level API — the CLI (``repro run/list/describe``),
benchmarks, and CI smoke coverage pick them up from the metadata alone.
Results are bit-identical to the legacy free functions (which now warn
once and delegate); see ``docs/api.md`` for the schema and the
old→new migration table.
"""

from __future__ import annotations

from .errors import ApiError
from .events import (CellDone, CheckpointDone, ExecutorDegraded,
                     JobQuarantined, JobRetried, JobStateChanged, RunEvent,
                     RunFinished, RunStarted, RunWarning, TelemetrySnapshot,
                     WorkerLost)
from .handle import RunContext, RunHandle
from .registry import (REGISTRY, Experiment, ExperimentRegistry, Param,
                       experiment)
from .report import RunReport, SeriesReport
from .request import BACKENDS, EXECUTORS, RunRequest

__all__ = [
    "ApiError",
    "RunEvent", "RunStarted", "CellDone", "CheckpointDone", "RunWarning",
    "JobRetried", "JobQuarantined", "WorkerLost", "ExecutorDegraded",
    "JobStateChanged", "TelemetrySnapshot", "RunFinished",
    "Param", "Experiment", "ExperimentRegistry", "REGISTRY", "experiment",
    "RunRequest", "EXECUTORS", "BACKENDS",
    "RunReport", "SeriesReport",
    "RunContext", "RunHandle",
    "submit", "run", "experiment_names", "describe",
]

_catalog_loaded = False


def _load_catalog() -> None:
    """Populate :data:`REGISTRY` with the built-in entries on first use
    (deferred: importing :mod:`repro.api` stays light; the experiment
    modules pull in models/datasets)."""
    global _catalog_loaded
    if not _catalog_loaded:
        from . import catalog  # noqa: F401  (registers on import)
        _catalog_loaded = True


def submit(request: RunRequest) -> RunHandle:
    """Validate ``request`` against the registry and return its handle.

    Raises :class:`ApiError` for an unknown experiment, unknown or
    uncoercible params, or a journal on an experiment that does not
    support journaling.  Nothing heavy runs until
    :meth:`RunHandle.run` / :meth:`RunHandle.events`.
    """
    _load_catalog()
    entry = REGISTRY.get(request.experiment)
    params = entry.resolve(request.params, quick=request.quick)
    if request.journal is not None and not entry.supports_journal:
        raise ApiError(f"experiment {entry.name!r} does not support "
                       "journaling; drop the journal option")
    return RunHandle(entry, request, params)


def run(experiment: str, params: dict | None = None, *, on_event=None,
        **options) -> RunReport:
    """One-call convenience: build the request, run it, return the report.

    ``options`` are the :class:`RunRequest` engine fields (``executor``,
    ``n_jobs``, ``backend``, ``cache_bytes``, ``journal``, ``resume``,
    ``quick``); ``on_event`` subscribes a callback before running.
    """
    handle = submit(RunRequest(experiment=experiment,
                               params=dict(params or {}), **options))
    if on_event is not None:
        handle.subscribe(on_event)
    return handle.run()


def experiment_names() -> list[str]:
    """Sorted canonical names of every registered experiment."""
    _load_catalog()
    return REGISTRY.names()


def describe(name: str) -> dict:
    """JSON-able metadata of one experiment (params, defaults, quick)."""
    _load_catalog()
    return REGISTRY.describe(name)
