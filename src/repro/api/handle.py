"""Streaming run handles: one event stream over the campaign engine.

A :class:`RunHandle` executes one validated request and emits the typed
events of :mod:`repro.api.events` to every subscriber — the CLI
progress renderer, benchmarks counting cells, tests pinning behavior.
Two consumption styles:

* **callback** — ``handle.subscribe(cb); report = handle.run()`` runs
  synchronously in the calling thread, invoking ``cb`` per event;
* **iterator** — ``for event in handle.events(): ...`` drives the run
  on a background thread and yields events as they arrive (the report
  lands on ``handle.report``).

The :class:`RunContext` is the runner side of the same contract: it
hands catalog functions their engine options (with the executor's
warning hook pre-wired to ``RunWarning`` events), per-series progress
callbacks that emit ``CellDone``, and journal-path derivation with the
overwrite guard the CLI used to hand-roll per subcommand.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import asdict
from pathlib import Path

from .. import obs as _obs
from ..core import resilience as core_resilience
from ..core.engine import get_executor
from .errors import ApiError
from .events import (CellDone, ExecutorDegraded, JobQuarantined, JobRetried,
                     RunEvent, RunFinished, RunStarted, RunWarning,
                     TelemetrySnapshot, WorkerLost)
from .registry import Experiment
from .report import RunReport, SeriesReport, series_from_sweeps
from .request import RunRequest

__all__ = ["RunContext", "RunHandle"]

#: engine resilience record type -> mirrored api event type (the field
#: names match pairwise, so relaying is a plain asdict round-trip)
_ENGINE_EVENTS = {
    core_resilience.JobRetried: JobRetried,
    core_resilience.JobQuarantined: JobQuarantined,
    core_resilience.WorkerLost: WorkerLost,
    core_resilience.ExecutorDegraded: ExecutorDegraded,
}


class RunContext:
    """What a registered experiment function gets to work with."""

    def __init__(self, handle: "RunHandle"):
        self._handle = handle
        self.request: RunRequest = handle.request
        self.entry: Experiment = handle.entry
        self.params: dict = handle.params
        self.quick: bool = handle.request.quick
        self._executor_obj = None
        #: journal paths issued so far, label -> path
        self.journals: dict[str, str] = {}
        #: the run's telemetry (spans + metrics); RunHandle.run activates
        #: it as the ambient observability, so every FaultCampaign the
        #: experiment builds is traced without signature plumbing
        self.obs = _obs.Observability()

    # -- events ---------------------------------------------------------
    def emit(self, event: RunEvent) -> None:
        """Push one typed event to every subscriber."""
        self._handle._emit(event)

    def warn(self, message: str) -> None:
        self.emit(RunWarning(message))

    # -- engine options -------------------------------------------------
    @property
    def executor(self):
        """The run's executor object (created once, warning hook wired).

        Passing the *object* — rather than the name — into
        :class:`~repro.core.FaultCampaign` lets multi-campaign
        experiments (per-layer grids, the model zoo) share one pool and
        its published shared-memory planes across campaigns.
        """
        if self._executor_obj is None:
            executor = get_executor(self.request.executor,
                                    self.request.n_jobs,
                                    self.request.retry_policy())
            if hasattr(executor, "on_warning"):
                executor.on_warning = self.warn
            if hasattr(executor, "on_event"):
                executor.on_event = self._relay_engine_event
            self._executor_obj = executor
        return self._executor_obj

    def _relay_engine_event(self, record) -> None:
        """Mirror one engine resilience record as its typed api event."""
        cls = _ENGINE_EVENTS.get(type(record))
        if cls is not None:
            self.emit(cls(**asdict(record)))

    def engine_kwargs(self) -> dict:
        """Keyword arguments for :class:`~repro.core.FaultCampaign` (and
        the drivers that forward to it)."""
        return {"executor": self.executor, "n_jobs": self.request.n_jobs,
                "backend": self.request.backend,
                "cache_bytes": self.request.cache_bytes}

    def close(self) -> None:
        """Release executor-held resources (shared-memory planes)."""
        release = getattr(self._executor_obj, "release_planes", None)
        if release is not None:
            release()

    # -- progress -------------------------------------------------------
    def progress_for(self, series: str):
        """A :meth:`FaultCampaign.run`-style ``progress(done, total,
        cell)`` callback that emits :class:`CellDone` for ``series``."""
        def progress(done, total, cell):
            point, repeat, accuracy = cell
            self.emit(CellDone(series=series, done=done, total=total,
                               point=point, repeat=repeat,
                               accuracy=accuracy))
        return progress

    def series_progress(self, series, done, total, cell) -> None:
        """Driver-level progress hook (``progress(series, done, total,
        cell)``) — the signature :func:`repro.experiments.fig4.
        layer_sweeps` and :func:`repro.experiments.fig5.model_sweep`
        forward per campaign series."""
        self.progress_for(series)(done, total, cell)

    # -- journals -------------------------------------------------------
    def journal_for(self, label: str | None = None) -> str | None:
        """The journal path for one series (or the whole run).

        Returns ``None`` when the request carries no journal.  For
        multi-series experiments a ``label`` derives one sibling file
        per series (``fig4a.jsonl`` → ``fig4a.conv1.jsonl``) — the
        engine fingerprints each journal against its own grid, so
        series could never share one file anyway.  Without
        ``resume=True`` an existing non-empty journal is refused.
        """
        if self.request.journal is None:
            return None
        path = Path(self.request.journal)
        if label is not None:
            suffix = path.suffix or ".jsonl"
            path = path.with_name(f"{path.stem}.{label}{suffix}")
        if (not self.request.resume and path.exists()
                and path.stat().st_size > 0):
            raise ApiError(f"journal {path} already exists; "
                           "pass resume/--resume to continue it")
        self.journals[label or ""] = str(path)
        return str(path)

    # -- report ---------------------------------------------------------
    def report(self, series=None, tables: dict | None = None,
               baseline: float | None = None, meta: dict | None = None,
               raw: object = None) -> RunReport:
        """Assemble the run's :class:`RunReport`.

        ``series`` may be a ``{label: SweepResult}`` dict (normalized
        via :func:`series_from_sweeps`) or a prebuilt
        :class:`SeriesReport` list.
        """
        if series is None:
            series_list: list[SeriesReport] = []
        elif isinstance(series, dict):
            series_list = series_from_sweeps(series)
        else:
            series_list = list(series)
        report = RunReport(
            experiment=self.entry.name, params=dict(self.params),
            engine=self.request.engine(), series=series_list,
            tables=dict(tables or {}), baseline=baseline,
            meta=dict(meta or {}), raw=raw)
        for label, path in self.journals.items():
            report.artifacts[f"journal:{label}" if label else "journal"] = path
        return report


#: sentinel queue markers for the events() iterator
_DONE = object()


class RunHandle:
    """One experiment run: subscribe, run (or iterate), read the report."""

    def __init__(self, entry: Experiment, request: RunRequest,
                 params: dict):
        self.entry = entry
        self.request = request
        #: fully resolved parameter values (defaults + quick + user)
        self.params = params
        self.report: RunReport | None = None
        self.state = "pending"  # pending -> running -> done | failed
        self._subscribers: list = []
        self._event_counts: dict[str, int] = {}

    def subscribe(self, callback) -> None:
        """Register ``callback(event)`` for every subsequent event."""
        self._subscribers.append(callback)

    def _emit(self, event: RunEvent) -> None:
        name = type(event).__name__
        self._event_counts[name] = self._event_counts.get(name, 0) + 1
        for callback in self._subscribers:
            callback(event)

    def run(self) -> RunReport:
        """Execute synchronously; returns (and stores) the report.

        Idempotent: a second call returns the stored report without
        re-running.  Failures mark the handle ``failed`` and re-raise.
        """
        if self.state == "done":
            return self.report
        if self.state != "pending":
            raise RuntimeError(f"handle is {self.state}; "
                               "create a new one to re-run")
        self.state = "running"
        self._emit(RunStarted(experiment=self.entry.name,
                              params=dict(self.params)))
        context = RunContext(self)
        try:
            with _obs.activated(context.obs), \
                    context.obs.span("run", experiment=self.entry.name):
                report = self.entry.func(context, **self.params)
        except BaseException:
            self.state = "failed"
            raise
        finally:
            context.close()
        if not isinstance(report, RunReport):
            self.state = "failed"
            raise ApiError(
                f"experiment {self.entry.name!r} returned "
                f"{type(report).__name__}, not a RunReport "
                "(build one with ctx.report(...))")
        report.meta["events"] = dict(self._event_counts)
        telemetry = context.obs.telemetry()
        report.meta["telemetry"] = telemetry
        self.report = report
        self.state = "done"
        self._emit(TelemetrySnapshot(**telemetry))
        self._emit(RunFinished(report=report))
        return report

    def result(self) -> RunReport:
        """The report, running the experiment first if needed."""
        return self.run() if self.report is None else self.report

    def events(self):
        """Iterate events while the run executes on a worker thread.

        Yields every event including the final :class:`RunFinished`;
        afterwards ``handle.report`` holds the report.  An experiment
        failure is re-raised in the consuming thread once the stream
        drains.  Abandoning the iterator early (``break``, ``close()``)
        does **not** cancel the run — the engine has no cancellation
        point — it keeps completing on the daemon worker thread and the
        report still lands on ``handle.report``; use
        :meth:`subscribe` + :meth:`run` when the caller needs to stay
        in control of the run's thread.
        """
        stream: queue.Queue = queue.Queue()
        self.subscribe(stream.put)
        failure: list[BaseException] = []
        drained = False

        def drive():
            try:
                self.run()
            except BaseException as error:  # re-raised in the consumer
                failure.append(error)
            finally:
                stream.put(_DONE)

        thread = threading.Thread(target=drive, name="repro-run", daemon=True)
        thread.start()
        try:
            while True:
                event = stream.get()
                if event is _DONE:
                    drained = True
                    break
                yield event
        finally:
            # join only a finished run: an early-exiting consumer must
            # not block here for the remainder of a long campaign
            if drained:
                thread.join()
        if failure:
            raise failure[0]
