"""The typed request half of the API: what to run, and how.

A :class:`RunRequest` is everything one experiment run needs, in one
validated value: the registry name, its parameters, and the engine
options every workload shares (executor, worker count, inference
backend, cache cap, journal).  Experiment parameters are validated
against the registry entry at submit time; the engine options are
validated here, eagerly, so a malformed request fails before any model
loads.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

from .errors import ApiError

__all__ = ["RunRequest", "EXECUTORS", "BACKENDS"]

#: executor names the engine resolves (see repro.core.engine)
EXECUTORS = ("serial", "multiprocessing", "shared_memory", "shm")
#: inference backends (see repro.binary.layers)
BACKENDS = ("float", "packed")


@dataclass(frozen=True)
class RunRequest:
    """One validated experiment-run request.

    Parameters
    ----------
    experiment:
        Registry name (``repro list`` / :func:`repro.api.experiment_names`).
    params:
        Experiment parameters; values may be CLI strings (coerced
        against the declared :class:`~repro.api.registry.Param` kinds)
        or real Python values.  Unknown names are refused at submit.
    executor / n_jobs / backend / cache_bytes:
        The engine options of :class:`repro.core.FaultCampaign`,
        identical semantics.
    journal:
        JSONL journal path; multi-series experiments derive one sibling
        file per series (``fig4a.jsonl`` → ``fig4a.conv1.jsonl``).
        Refused for experiments that declare no journal support.
    resume:
        Allow continuing existing journal files; without it an existing
        non-empty journal is refused (exit 2 on the CLI), never
        silently overwritten.
    quick:
        Apply the experiment's declared quick overrides (tiny smoke
        sizes) underneath ``params``.
    retries:
        Extra attempts per campaign cell before quarantine (so
        ``retries=2`` means up to 3 attempts).  ``0`` still arms the
        supervision layer — lost workers trigger pool rebuilds and the
        degradation ladder — it just never re-attempts a *failing* job.
    job_timeout:
        Per-cell wall-clock budget in seconds; a cell exceeding it is
        treated as a failed attempt (the worker pool is rebuilt to
        reclaim the stuck worker).  ``None`` disables timeouts.
    degrade:
        Walk the executor degradation ladder
        (``shared_memory`` → ``multiprocessing`` → ``serial``) when a
        rung keeps failing; ``False`` raises instead (``--no-degrade``).
    """

    experiment: str
    params: Mapping = field(default_factory=dict)
    executor: str = "serial"
    n_jobs: int | None = None
    backend: str = "float"
    cache_bytes: int | None = None
    journal: str | Path | None = None
    resume: bool = False
    quick: bool = False
    retries: int = 2
    job_timeout: float | None = None
    degrade: bool = True

    def __post_init__(self):
        if not self.experiment or not isinstance(self.experiment, str):
            raise ApiError("experiment must be a non-empty registry name")
        if not isinstance(self.params, Mapping):
            raise ApiError(f"params must be a mapping, got "
                           f"{type(self.params).__name__}")
        if isinstance(self.executor, str) and self.executor not in EXECUTORS:
            raise ApiError(f"unknown executor {self.executor!r}; "
                           f"use one of {list(EXECUTORS[:3])}")
        if self.backend not in BACKENDS:
            raise ApiError(f"unknown backend {self.backend!r}; "
                           f"use one of {list(BACKENDS)}")
        if self.n_jobs is not None and (not isinstance(self.n_jobs, int)
                                        or self.n_jobs < 0):
            raise ApiError(f"n_jobs must be a non-negative int or None, "
                           f"got {self.n_jobs!r}")
        if self.cache_bytes is not None and (
                not isinstance(self.cache_bytes, int) or self.cache_bytes < 0):
            raise ApiError(f"cache_bytes must be a non-negative int or "
                           f"None, got {self.cache_bytes!r}")
        if self.resume and self.journal is None:
            raise ApiError("resume requires a journal path "
                           "(--journal PATH); nothing to resume")
        if not isinstance(self.retries, int) or self.retries < 0:
            raise ApiError(f"retries must be a non-negative int, "
                           f"got {self.retries!r}")
        if self.job_timeout is not None and (
                not isinstance(self.job_timeout, (int, float))
                or self.job_timeout <= 0):
            raise ApiError(f"job_timeout must be a positive number of "
                           f"seconds or None, got {self.job_timeout!r}")

    def engine(self) -> dict:
        """The request's engine options as a JSON-able dict (recorded on
        every :class:`~repro.api.report.RunReport`)."""
        return {
            "executor": self.executor,
            "n_jobs": self.n_jobs,
            "backend": self.backend,
            "cache_bytes": self.cache_bytes,
            "journal": str(self.journal) if self.journal else None,
            "resume": self.resume,
            "quick": self.quick,
            "retries": self.retries,
            "job_timeout": self.job_timeout,
            "degrade": self.degrade,
        }

    def retry_policy(self):
        """The :class:`~repro.core.resilience.RetryPolicy` these options
        arm on the executor."""
        from ..core.resilience import RetryPolicy
        return RetryPolicy(max_attempts=self.retries + 1,
                           job_timeout=self.job_timeout,
                           degrade=self.degrade)
