"""The built-in experiment catalog: every paper driver as a registry entry.

Each entry wraps the *identical* implementation the legacy free
functions delegate to (``run_fig4a.__wrapped__`` etc.), so registry
results are bit-identical to the legacy drivers by construction.  What
the catalog adds is the uniform surface: declared parameters, quick
smoke configurations, per-series journals, and the typed event stream.

Registered entries (``repro list``):

=====================  ==================================================
``sweep``              ad-hoc accuracy-vs-rate sweep on the trained LeNet
``fig4a`` .. ``fig4f`` the paper's Fig. 4 layer/row/column/runtime studies
``fig5a`` .. ``fig5c`` the nine-architecture model-zoo sweeps
                       (``fig5`` is an alias of ``fig5a``)
``table1``/``table2``  the paper's setup / model-characteristics tables
``scenario``           any lifetime/environment story (zoo name or spec
                       file)
six zoo stories        ``fresh-device`` .. ``row-driver-failure``, each a
                       first-class entry
=====================  ==================================================
"""

from __future__ import annotations

import numpy as np

from .errors import ApiError
from .events import CheckpointDone
from .registry import REGISTRY, Experiment, Param, experiment
from .report import SeriesReport

__all__ = ["register_zoo_scenarios"]

# -- shared parameter declarations ----------------------------------------

_GRID = (Param("rows", "int", 40, "crossbar rows per layer"),
         Param("cols", "int", 10, "crossbar columns per layer"))
_SEED = Param("seed", "int", 0, "base seed (cell seeds derive from it)")
_MNIST_IMAGES = Param("images", "int", 800, "MNIST test images evaluated")
_IMAGENET_IMAGES = Param("images", "int", 400,
                         "synthetic-ImageNet test images evaluated")
_MODELS = Param("models", "strs", None,
                "zoo architectures (default: all nine)")

#: tiny-but-real smoke sizes (satisfies ``--quick`` for CI)
_QUICK_MNIST = dict(images=60, repeats=1, rows=8, cols=4)


def _lenet_mnist(images: int):
    from ..experiments.common import get_mnist, trained_lenet
    model = trained_lenet()
    _, test = get_mnist()
    return model, test.subset(images)


def _imagenet_test(images: int):
    from ..experiments.common import get_imagenet
    _, test = get_imagenet()
    return test.subset(images)


def _multi_meta(results: dict) -> dict:
    """Aggregate bookkeeping over a ``{label: SweepResult}`` family."""
    first = next(iter(results.values()))
    meta = {"executor": first.meta.get("executor"),
            "backend": first.meta.get("backend"),
            "series": list(results)}
    resumed = [r.meta["resumed_cells"] for r in results.values()
               if "resumed_cells" in r.meta]
    if resumed:
        meta["resumed_cells"] = int(sum(resumed))
    return meta


def _sweep_report(ctx, results: dict, raw=None):
    # run-level baseline is the first series' (one model → the only
    # one; fig5 families keep every model's own baseline on its
    # SeriesReport)
    first = next(iter(results.values()))
    return ctx.report(series=results, raw=raw if raw is not None else results,
                      baseline=float(first.baseline),
                      meta=_multi_meta(results))


# -- the ad-hoc sweep (the old `repro sweep` subcommand) ------------------

@experiment(
    "sweep",
    description="Accuracy-vs-rate sweep on the trained binary LeNet "
                "(the old `repro sweep`).",
    params=(Param("fault", "str", "bitflip", "fault model",
                  choices=("bitflip", "stuck_at")),
            Param("rates", "floats", [0.0, 0.1, 0.2, 0.3],
                  "injection rates swept"),
            Param("repeats", "int", 5, "repetitions per rate"),
            Param("images", "int", 300, "MNIST test images evaluated"),
            *_GRID, _SEED),
    supports_journal=True,
    quick=dict(rates=[0.0, 0.2], **_QUICK_MNIST))
def _sweep(ctx, fault, rates, repeats, images, rows, cols, seed):
    from ..core import FaultCampaign, FaultSpec
    model, test = _lenet_mnist(images)
    spec_factory = (FaultSpec.bitflip if fault == "bitflip"
                    else FaultSpec.stuck_at)
    with FaultCampaign(model, test.x, test.y, rows=rows, cols=cols,
                       **ctx.engine_kwargs()) as campaign:
        result = campaign.run(spec_factory, xs=rates, repeats=repeats,
                              seed=seed, label=fault,
                              journal=ctx.journal_for(),
                              progress=ctx.progress_for(fault))
    return ctx.report(series={fault: result}, raw=result,
                      baseline=float(result.baseline),
                      meta=dict(result.meta))


# -- Fig. 4: LeNet layer resilience ---------------------------------------

_FIG4_RATE_PARAMS = (Param("rates", "floats", None, "injection rates "
                           "(default: the paper's 0..30% axis)"),
                     Param("repeats", "int", 10, "repetitions per point"),
                     _MNIST_IMAGES, *_GRID, _SEED)
_FIG4_QUICK = dict(rates=[0.0, 0.2], **_QUICK_MNIST)


def _fig4_layer_family(ctx, runner, rates, repeats, images, rows, cols,
                       seed, default_rates):
    model, test = _lenet_mnist(images)
    results = runner(model, test,
                     rates=tuple(rates if rates is not None
                                 else default_rates),
                     repeats=repeats, rows=rows, cols=cols, seed=seed,
                     progress=ctx.series_progress,
                     journal_for=ctx.journal_for, **ctx.engine_kwargs())
    return _sweep_report(ctx, results)


@experiment("fig4a", params=_FIG4_RATE_PARAMS, supports_journal=True,
            quick=_FIG4_QUICK,
            description="Fig. 4a: bit-flip injection rate vs accuracy, "
                        "per LeNet layer plus combined.")
def _fig4a(ctx, rates, repeats, images, rows, cols, seed):
    from ..experiments import fig4
    return _fig4_layer_family(ctx, fig4.run_fig4a.__wrapped__, rates,
                              repeats, images, rows, cols, seed,
                              fig4.DEFAULT_RATES)


@experiment("fig4b", params=_FIG4_RATE_PARAMS, supports_journal=True,
            quick=_FIG4_QUICK,
            description="Fig. 4b: stuck-at injection rate vs accuracy, "
                        "per LeNet layer plus combined.")
def _fig4b(ctx, rates, repeats, images, rows, cols, seed):
    from ..experiments import fig4
    return _fig4_layer_family(ctx, fig4.run_fig4b.__wrapped__, rates,
                              repeats, images, rows, cols, seed,
                              fig4.DEFAULT_RATES)


@experiment(
    "fig4c",
    description="Fig. 4c: dynamic faults — sensitization period vs "
                "accuracy on LeNet.",
    params=(Param("periods", "ints", [0, 1, 2, 3, 4],
                  "sensitization periods swept"),
            Param("rate", "float", 0.10, "bit-flip rate behind the axis"),
            Param("repeats", "int", 10, "repetitions per period"),
            _MNIST_IMAGES, *_GRID, _SEED),
    supports_journal=True,
    quick=dict(periods=[0, 4], **_QUICK_MNIST))
def _fig4c(ctx, periods, rate, repeats, images, rows, cols, seed):
    from ..experiments import fig4
    model, test = _lenet_mnist(images)
    result = fig4.run_fig4c.__wrapped__(
        model, test, periods=tuple(periods), rate=rate, repeats=repeats,
        rows=rows, cols=cols, seed=seed, journal=ctx.journal_for(),
        progress=ctx.progress_for("dynamic"), **ctx.engine_kwargs())
    return ctx.report(series={"dynamic": result}, raw=result,
                      baseline=float(result.baseline),
                      meta=dict(result.meta))


_FIG4_LINE_PARAMS = (Param("counts", "ints", None,
                           "faulty-line counts (default: the paper axis)"),
                     Param("repeats", "int", 10, "repetitions per count"),
                     _MNIST_IMAGES, *_GRID, _SEED)
_FIG4_LINE_QUICK = dict(counts=[0, 2], **_QUICK_MNIST)


def _fig4_line_family(ctx, runner, counts, repeats, images, rows, cols,
                      seed, default_counts):
    model, test = _lenet_mnist(images)
    results = runner(model, test,
                     counts=tuple(counts if counts is not None
                                  else default_counts),
                     repeats=repeats, rows=rows, cols=cols, seed=seed,
                     progress=ctx.series_progress,
                     journal_for=ctx.journal_for, **ctx.engine_kwargs())
    return _sweep_report(ctx, results)


@experiment("fig4d", params=_FIG4_LINE_PARAMS, supports_journal=True,
            quick=_FIG4_LINE_QUICK,
            description="Fig. 4d: faulty crossbar columns vs accuracy, "
                        "per LeNet layer.")
def _fig4d(ctx, counts, repeats, images, rows, cols, seed):
    from ..experiments import fig4
    return _fig4_line_family(ctx, fig4.run_fig4d.__wrapped__, counts,
                             repeats, images, rows, cols, seed,
                             (0, 1, 2, 3, 4))


@experiment("fig4e", params=_FIG4_LINE_PARAMS, supports_journal=True,
            quick=_FIG4_LINE_QUICK,
            description="Fig. 4e: faulty crossbar rows vs accuracy, "
                        "per LeNet layer.")
def _fig4e(ctx, counts, repeats, images, rows, cols, seed):
    from ..experiments import fig4
    return _fig4_line_family(ctx, fig4.run_fig4e.__wrapped__, counts,
                             repeats, images, rows, cols, seed,
                             (0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20))


def _tiny_runtime_workload(seed: int):
    """A miniature BNN + dataset for quick runtime smoke measurements
    (the gate-serial device baseline on LeNet takes minutes/image)."""
    from .. import nn
    from ..binary import QuantDense
    from ..data import Dataset
    rng = np.random.default_rng(1234 + seed)
    model = nn.Sequential([
        QuantDense(6, input_quantizer="ste_sign",
                   kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(4, input_quantizer="ste_sign",
                   kernel_quantizer="ste_sign"),
    ]).build((12,), seed=seed)
    x = rng.standard_normal((40, 12)).astype(np.float32)
    y = rng.integers(0, 4, 40)
    return model, Dataset(x, y)


@experiment(
    "fig4f",
    description="Fig. 4f: runtime of X-Fault vs FLIM vs vanilla "
                "inference (speedup table).",
    params=(Param("model", "str", "lenet", "workload under test",
                  choices=("lenet", "tiny")),
            Param("images", "int", 800, "test images per pass "
                  "(lenet workload)"),
            Param("passes", "int", 3, "full test-set passes measured"),
            Param("xfault_images", "int", 2,
                  "images for the device-tile baseline (extrapolated)"),
            Param("serial_images", "int", 1,
                  "images for the gate-serial X-Fault baseline"),
            *_GRID,
            Param("gate", "str", "imply", "LIM gate family",
                  choices=("imply", "magic")),
            _SEED),
    quick=dict(model="tiny", passes=1, xfault_images=2, serial_images=1,
               rows=6, cols=3))
def _fig4f(ctx, model, images, passes, xfault_images, serial_images,
           rows, cols, gate, seed):
    from ..experiments import fig4
    if ctx.request.executor != "serial":
        ctx.warn("fig4f is a wall-clock runtime measurement; it always "
                 "runs serially and ignores executor/backend options")
    if model == "tiny":
        workload, test = _tiny_runtime_workload(seed)
    else:
        workload, test = _lenet_mnist(images)
    outcome = fig4.run_fig4f.__wrapped__(
        workload, test, passes=passes, xfault_images=xfault_images,
        serial_images=serial_images, rows=rows, cols=cols,
        gate_family=gate, seed=seed)
    table = [[platform, float(seconds), float(speedup)]
             for platform, seconds, speedup in outcome["table"]]
    return ctx.report(
        tables={"runtime": {"columns": ["platform", "seconds", "speedup"],
                            "rows": table,
                            "images": int(outcome["images"])}},
        raw=outcome, meta={"workload": model})


# -- Fig. 5: model-zoo resilience -----------------------------------------

def _fig5_family(ctx, runner, models, repeats, images, rows, cols, seed,
                 axis_kwargs):
    test = _imagenet_test(images)
    results = runner(models=list(models) if models else None,
                     repeats=repeats, seed=seed, rows=rows, cols=cols,
                     test=test, progress=ctx.series_progress,
                     journal_for=ctx.journal_for, **axis_kwargs,
                     **ctx.engine_kwargs())
    return _sweep_report(ctx, results)


_FIG5_QUICK = dict(models=["binary_alexnet"], repeats=1, images=40)


@experiment(
    "fig5a", aliases=("fig5",), supports_journal=True,
    description="Fig. 5a: bit-flip rate vs accuracy across the nine "
                "zoo architectures.",
    params=(_MODELS,
            Param("rates", "floats", None,
                  "bit-flip rates (default: the paper's 0..20% axis)"),
            Param("repeats", "int", 5, "repetitions per point"),
            _IMAGENET_IMAGES, *_GRID, _SEED),
    quick=dict(rates=[0.0, 0.2], **_FIG5_QUICK))
def _fig5a(ctx, models, rates, repeats, images, rows, cols, seed):
    from ..experiments import fig5
    axis = {"rates": list(rates if rates is not None
                          else fig5.BITFLIP_RATES)}
    return _fig5_family(ctx, fig5.run_fig5a.__wrapped__, models, repeats,
                        images, rows, cols, seed, axis)


@experiment(
    "fig5b", supports_journal=True,
    description="Fig. 5b: stuck-at rate vs accuracy across the nine "
                "zoo architectures.",
    params=(_MODELS,
            Param("rates", "floats", None,
                  "stuck-at rates (default: the paper's 0..2% axis)"),
            Param("repeats", "int", 5, "repetitions per point"),
            _IMAGENET_IMAGES, *_GRID, _SEED),
    quick=dict(rates=[0.0, 0.02], **_FIG5_QUICK))
def _fig5b(ctx, models, rates, repeats, images, rows, cols, seed):
    from ..experiments import fig5
    axis = {"rates": list(rates if rates is not None
                          else fig5.STUCKAT_RATES)}
    return _fig5_family(ctx, fig5.run_fig5b.__wrapped__, models, repeats,
                        images, rows, cols, seed, axis)


@experiment(
    "fig5c", supports_journal=True,
    description="Fig. 5c: dynamic-fault sensitization period vs accuracy "
                "across the nine zoo architectures.",
    params=(_MODELS,
            Param("periods", "ints", None,
                  "sensitization periods (default: 0..5)"),
            Param("rate", "float", 0.10, "bit-flip rate behind the axis"),
            Param("repeats", "int", 5, "repetitions per point"),
            _IMAGENET_IMAGES, *_GRID, _SEED),
    quick=dict(periods=[0, 4], **_FIG5_QUICK))
def _fig5c(ctx, models, periods, rate, repeats, images, rows, cols, seed):
    from ..experiments import fig5
    axis = {"periods": list(periods if periods is not None
                            else fig5.DYNAMIC_PERIODS),
            "rate": rate}
    return _fig5_family(ctx, fig5.run_fig5c.__wrapped__, models, repeats,
                        images, rows, cols, seed, axis)


# -- tables ---------------------------------------------------------------

@experiment("table1",
            description="Table I: the adopted experimental setup of this "
                        "reproduction host.")
def _table1(ctx):
    from ..experiments.tables import table1_setup
    rows = table1_setup()
    return ctx.report(tables={"setup": {"columns": ["key", "value"],
                                        "rows": [[k, v] for k, v in rows]}},
                      raw=rows)


@experiment(
    "table2",
    description="Table II: per-model Top-1, size, params, MACs, "
                "binarized % next to the paper's reference values.",
    params=(_MODELS,
            Param("accuracy", "bool", True,
                  "measure Top-1 (slow) instead of reporting NaN")),
    quick=dict(models=["binary_alexnet"], accuracy=False))
def _table2(ctx, models, accuracy):
    from ..experiments.tables import table2_model_stats
    rows = table2_model_stats(models=list(models) if models else None,
                              measure_accuracy=accuracy)
    columns = list(rows[0]) if rows else []
    return ctx.report(
        tables={"models": {"columns": columns,
                           "rows": [[row[c] for c in columns]
                                    for row in rows]}},
        raw=rows)


# -- scenarios ------------------------------------------------------------

_SCENARIO_PARAMS = (Param("repeats", "int", 3, "repetitions per grid cell"),
                    Param("images", "int", 300,
                          "MNIST test images evaluated"),
                    *_GRID, _SEED)
_SCENARIO_QUICK = dict(repeats=1, images=60, rows=8, cols=4)


def _scenario_progress(ctx, grid, repeats, name):
    """CellDone per cell + CheckpointDone when a device-age checkpoint's
    episodes × repetitions all completed (resumed cells never re-emit,
    so a partially journaled checkpoint completes without its event)."""
    remaining = [grid.n_episodes * repeats] * grid.n_checkpoints
    emit_cell = ctx.progress_for(name)

    def progress(done, total, cell):
        emit_cell(done, total, cell)
        checkpoint = grid.cells[cell[0]].checkpoint
        remaining[checkpoint] -= 1
        if remaining[checkpoint] == 0:
            ctx.emit(CheckpointDone(index=checkpoint,
                                    total=grid.n_checkpoints,
                                    age=grid.ages[checkpoint]))
    return progress


def _scenario_series(result) -> list[SeriesReport]:
    ages = [float(age) for age in result.ages]
    series = [SeriesReport(label=episode, xs=ages,
                           mean=[float(v) for v in
                                 result.trajectory(episode)],
                           std=[float(v) for v in result.std(episode)])
              for episode in result.episodes]
    if len(result.episodes) > 1:
        series.append(SeriesReport(
            label="blended", xs=ages,
            mean=[float(v) for v in result.blended_trajectory()],
            std=[0.0] * len(ages)))
    return series


def _run_scenario_entry(ctx, scenario, repeats, images, rows, cols, seed):
    from ..experiments.lifetime import run_lifetime_trajectory
    from ..scenarios import compile_scenario
    model, test = _lenet_mnist(images)
    grid = compile_scenario(scenario, model, rows=rows, cols=cols)
    result = run_lifetime_trajectory(
        model, test, scenario=scenario, repeats=repeats, rows=rows,
        cols=cols, seed=seed, journal=ctx.journal_for(),
        progress=_scenario_progress(ctx, grid, repeats, scenario.name),
        grid=grid, **ctx.engine_kwargs())
    return ctx.report(series=_scenario_series(result), raw=result,
                      baseline=float(result.baseline),
                      meta=dict(result.meta))


@experiment(
    "scenario",
    description="Any declarative lifetime/environment story: a zoo name "
                "(name=...) or a YAML/JSON spec file (spec=...).",
    params=(Param("name", "str", None, "zoo scenario name "
                  "(see: repro scenarios list)"),
            Param("spec", "str", None, "YAML/JSON scenario spec file"),
            *_SCENARIO_PARAMS),
    supports_journal=True,
    quick=dict(name="fresh-device", **_SCENARIO_QUICK))
def _scenario(ctx, name, spec, repeats, images, rows, cols, seed):
    from ..scenarios import Scenario, resolve_scenario
    if (name is None) == (spec is None):
        raise ApiError("scenario: pass exactly one of name=<zoo name> "
                       "or spec=<file> (see: repro scenarios list)")
    scenario = (Scenario.from_file(spec) if spec
                else resolve_scenario(name))
    return _run_scenario_entry(ctx, scenario, repeats, images, rows, cols,
                               seed)


def register_zoo_scenarios() -> None:
    """Register every zoo story as a first-class experiment entry
    (``repro run end-of-life``)."""
    from ..scenarios import get_scenario, scenario_names
    for name in scenario_names():
        story = get_scenario(name)

        def runner(ctx, repeats, images, rows, cols, seed, _name=name):
            from ..scenarios import get_scenario as resolve
            return _run_scenario_entry(ctx, resolve(_name), repeats,
                                       images, rows, cols, seed)

        REGISTRY.register(Experiment(
            name=name, func=runner, params=_SCENARIO_PARAMS,
            description=f"Scenario: {story.description}",
            supports_journal=True, quick=dict(_SCENARIO_QUICK)))


register_zoo_scenarios()
