"""Scenario compiler: lower a declarative story onto the campaign grid.

A :class:`~repro.scenarios.spec.Scenario` is a *spec*; the campaign
engine only understands a flat sweep — ``xs`` values and a
``spec_factory``.  :func:`compile_scenario` bridges the two: every
``(timeline checkpoint, environment episode)`` pair becomes one
:class:`CompiledCell` whose clauses are resolved against the lifetime
curves at that checkpoint's age and flattened into plain
:class:`~repro.core.faults.FaultSpec` lists.  The resulting
:class:`CompiledGrid` plugs straight into
:meth:`repro.core.FaultCampaign.run` — cells ride the
serial/multiprocessing/shared-memory executors, the packed backend, the
JSONL journals and the activation-plane caches unchanged, and stay
bit-identical under fixed seeds because compilation is a pure function
of the scenario (no RNG is consumed; mask draws still happen per-job in
:func:`repro.core.engine.build_jobs`).

Compilation also *validates* against a model when one is given: clauses
targeting layers the model does not map are refused up front (exit
status 2 on the CLI) instead of silently injecting nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.faults import FaultSpec
from ..core.generator import mapped_layers
from ..lim.reliability import LifetimePoint
from .spec import Scenario, ScenarioError

__all__ = ["CompiledCell", "CompiledGrid", "compile_scenario"]


@dataclass(frozen=True)
class CompiledCell:
    """One campaign-grid cell of a compiled scenario.

    ``index`` is the cell's sweep coordinate (its ``x`` value in the
    lowered campaign); ``checkpoint``/``episode`` locate it on the
    scenario's two axes; ``age``/``stuck_rate``/``upset_rate`` record the
    resolved lifetime state; ``specs`` are the fully lowered fault
    directives the engine's job builder consumes.
    """

    index: int
    checkpoint: int
    episode: str
    age: float
    stuck_rate: float
    upset_rate: float
    specs: tuple[FaultSpec, ...]


class CompiledGrid:
    """A scenario lowered to campaign-engine terms.

    ``xs``/``spec_factory`` feed :meth:`repro.core.FaultCampaign.run`
    directly; ``cells`` keep the scenario coordinates for reshaping the
    flat sweep back into per-checkpoint × per-episode trajectories.
    Cells are ordered checkpoint-major: ``index = checkpoint *
    len(episodes) + episode_column``.
    """

    def __init__(self, scenario: Scenario, cells: list[CompiledCell],
                 rows: int, cols: int):
        self.scenario = scenario
        self.cells = list(cells)
        self.rows = rows
        self.cols = cols
        self.episodes = scenario.episode_names()
        self.duties = scenario.duties()
        self.ages = list(scenario.timeline.ages)

    @property
    def xs(self) -> list[float]:
        """Sweep axis: one float index per cell (the engine keys cells by
        position; ages may repeat across episodes, indices never do)."""
        return [float(cell.index) for cell in self.cells]

    def spec_factory(self, x: float) -> list[FaultSpec]:
        """The ``spec_factory`` contract of :meth:`FaultCampaign.run`."""
        return list(self.cells[int(round(x))].specs)

    @property
    def n_checkpoints(self) -> int:
        return len(self.ages)

    @property
    def n_episodes(self) -> int:
        return len(self.episodes)

    def describe(self) -> list[dict]:
        """One summary dict per cell (CLI/doc tables, bench JSON)."""
        return [{"index": cell.index, "checkpoint": cell.checkpoint,
                 "episode": cell.episode, "age": cell.age,
                 "stuck_rate": cell.stuck_rate,
                 "upset_rate": cell.upset_rate,
                 "specs": [repr(spec) for spec in cell.specs]}
                for cell in self.cells]


def _validate_layers(scenario: Scenario, model) -> None:
    referenced = scenario.layer_references()
    if not referenced:
        return
    mapped = {layer.name for layer in mapped_layers(model)}
    unknown = sorted(referenced - mapped)
    if unknown:
        raise ScenarioError(
            f"scenario {scenario.name!r} targets layer(s) {unknown} that "
            f"are not mapped on this model; mapped: {sorted(mapped)}")


def compile_scenario(scenario: Scenario, model=None,
                     rows: int = 40, cols: int = 10) -> CompiledGrid:
    """Lower ``scenario`` into a :class:`CompiledGrid`.

    Parameters
    ----------
    scenario:
        The declarative story to compile.
    model:
        Optional :class:`~repro.nn.model.Sequential`; when given, clause
        layer targets are validated against its mapped layers.
    rows, cols:
        Crossbar geometry — needed to resolve ``count: "lifetime"``
        clauses against the row/column axis lengths.

    Compilation is deterministic and RNG-free: the same scenario always
    lowers to the same grid, so two compiles (or a resume against a
    journaled grid) can never drift.
    """
    if not isinstance(scenario, Scenario):
        raise ScenarioError(f"expected a Scenario, got {type(scenario).__name__}")
    if model is not None:
        _validate_layers(scenario, model)
    points: list[LifetimePoint] = scenario.timeline.points()
    episode_names = scenario.episode_names()
    cells: list[CompiledCell] = []
    for checkpoint, point in enumerate(points):
        for column, episode in enumerate(episode_names):
            specs = tuple(
                clause.lower(point, rows, cols)
                for clause in scenario.clauses_for(episode))
            cells.append(CompiledCell(
                index=checkpoint * len(episode_names) + column,
                checkpoint=checkpoint, episode=episode,
                age=point.cycles, stuck_rate=point.stuck_rate,
                upset_rate=point.bitflip_rate, specs=specs))
    return CompiledGrid(scenario, cells, rows, cols)
