"""Declarative fault scenarios: lifetime + environment stories as data.

The paper's experiments are single-axis sweeps — one fault type, one rate
axis.  Its fault *vocabulary*, however, describes stories that unfold
over a device's lifetime and environment: stuck-at cells accumulating
with wear, transient upset bursts during radiation episodes, row drivers
failing structurally.  This module makes those stories first-class
values:

* a :class:`FaultClause` is one declarative fault component whose rate
  can be a number **or** a lifetime curve reference (``"lifetime-stuck"``
  / ``"lifetime-upset"``) resolved per device-age checkpoint through
  :class:`repro.lim.EnduranceModel`;
* a :class:`Timeline` lists the device-age checkpoints (cumulative
  switching cycles) the scenario is sampled at;
* an :class:`Episode` is a named environment condition (e.g. an SEU
  storm) contributing extra clauses for a ``duty`` fraction of
  inferences;
* a :class:`Scenario` composes all three and loads from dicts, JSON or
  YAML (:meth:`Scenario.from_dict` / :meth:`Scenario.from_file`).

Scenarios are *specs*, not executions: :mod:`repro.scenarios.compile`
lowers them onto the existing campaign grid, so they ride every
executor, backend, journal and cache of the engine unchanged.

Validation is strict in the style of :mod:`repro.core.vectors`: unknown
keys, out-of-range rates and malformed references raise
:class:`ScenarioError` (a :class:`ValueError`) with the offending field
named, and the CLI maps those to exit status 2.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields
from pathlib import Path

from ..core.faults import (FaultSpec, FaultType, Semantics, SpatialMode,
                           StuckPolarity)
from ..lim.reliability import EnduranceModel, LifetimePoint

__all__ = ["ScenarioError", "FaultClause", "Episode", "Timeline", "Scenario",
           "NOMINAL_EPISODE"]

#: name of the implicit baseline environment (no episode clauses active)
NOMINAL_EPISODE = "nominal"

#: rate strings resolved against the timeline's lifetime curves
RATE_SOURCES = ("lifetime-stuck", "lifetime-upset")

#: count string resolved as round(stuck_fraction * scale * axis_length)
COUNT_SOURCE = "lifetime"


class ScenarioError(ValueError):
    """A scenario spec is malformed (bad schema, rate, or reference)."""


def _check_keys(what: str, data: dict, allowed: tuple[str, ...]) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ScenarioError(f"{what}: unknown key(s) {unknown}; "
                            f"allowed: {sorted(allowed)}")


def _enum_value(what: str, value: str, enum) -> object:
    try:
        return enum(value)
    except ValueError:
        raise ScenarioError(
            f"{what}: {value!r} is not one of "
            f"{[member.value for member in enum]}") from None


@dataclass(frozen=True)
class FaultClause:
    """One declarative fault component of a scenario.

    Parameters
    ----------
    kind:
        ``"bitflip"`` / ``"stuck_at"`` / ``"faulty_rows"`` /
        ``"faulty_columns"`` (the :class:`~repro.core.faults.FaultType`
        vocabulary).
    rate:
        Injection rate for rate-based kinds: a float in ``[0, 1]``, or a
        lifetime reference — ``"lifetime-stuck"`` (the endurance model's
        stuck fraction at the checkpoint age) or ``"lifetime-upset"``
        (the per-inference transient upset probability).
    scale:
        Multiplier applied to the resolved rate (or ``"lifetime"``
        count); the result is clipped to the valid range.  Lets one
        endurance curve drive accelerated / decelerated variants.
    count:
        Faulty-line count for ``faulty_rows`` / ``faulty_columns``: an
        int ≥ 0, or ``"lifetime"`` = ``round(stuck_fraction * scale *
        axis_length)`` clipped to the axis.
    period:
        Dynamic-fault sensitization period (bit-flips only); must be
        ≥ 1 when given — 1 is the static every-operation case, n ≥ 2
        fires every n-th XNOR operation.  Omitted/None means static.
    polarity:
        ``"random"`` / ``"stuck_at_0"`` / ``"stuck_at_1"`` for stuck-at
        clauses.
    spatial:
        ``"iid"`` (default), ``"clustered"`` or ``"row_burst"`` — see
        :class:`~repro.core.faults.SpatialMode`.
    cluster_size:
        Cells per cluster / rows per burst for the correlated modes.
    semantics:
        Optional mask-application level override (``"output"`` /
        ``"weight"`` / ``"product"``).
    layers:
        Restrict the clause to these mapped layers (``None`` = all).
    """

    kind: str
    rate: float | str = 0.0
    scale: float = 1.0
    count: int | str = 0
    period: int | None = None
    polarity: str = "random"
    spatial: str = "iid"
    cluster_size: int = 0
    semantics: str | None = None
    layers: tuple[str, ...] | None = None

    def __post_init__(self):
        kind = _enum_value("clause kind", self.kind, FaultType)
        if isinstance(self.rate, str):
            if self.rate not in RATE_SOURCES:
                raise ScenarioError(
                    f"clause rate {self.rate!r} is neither a number nor one "
                    f"of {list(RATE_SOURCES)}")
        else:
            try:
                rate = float(self.rate)
            except (TypeError, ValueError):
                raise ScenarioError(
                    f"clause rate must be a number or a lifetime reference, "
                    f"got {self.rate!r}") from None
            if not math.isfinite(rate) or not 0.0 <= rate <= 1.0:
                raise ScenarioError(f"clause rate must be in [0, 1], "
                                    f"got {self.rate}")
        if isinstance(self.count, str):
            if self.count != COUNT_SOURCE:
                raise ScenarioError(
                    f"clause count {self.count!r} is neither an integer nor "
                    f"{COUNT_SOURCE!r}")
        elif not isinstance(self.count, int) or self.count < 0:
            raise ScenarioError(
                f"clause count must be a non-negative integer or "
                f"{COUNT_SOURCE!r}, got {self.count!r}")
        if not (isinstance(self.scale, (int, float))
                and math.isfinite(self.scale) and self.scale >= 0):
            raise ScenarioError(
                f"clause scale must be a finite non-negative number, "
                f"got {self.scale!r}")
        if self.period is not None:
            if not isinstance(self.period, int) or self.period < 1:
                raise ScenarioError(
                    f"dynamic-fault period must be an integer >= 1 "
                    f"(1 = static), got {self.period!r}")
            if kind != FaultType.BITFLIP:
                raise ScenarioError(
                    f"period applies to bitflip clauses, not {self.kind!r}")
        spatial = _enum_value("clause spatial mode", self.spatial, SpatialMode)
        if spatial == SpatialMode.IID:
            if self.cluster_size:
                raise ScenarioError("clause cluster_size applies to "
                                    "clustered/row_burst placement; iid "
                                    "takes none")
        elif not isinstance(self.cluster_size, int) or self.cluster_size < 1:
            raise ScenarioError(
                f"{self.spatial} placement needs an integer "
                f"cluster_size >= 1, got {self.cluster_size!r}")
        if self.polarity not in _POLARITIES:
            raise ScenarioError(
                f"clause polarity {self.polarity!r} is not one of "
                f"{sorted(_POLARITIES)}")
        if self.semantics is not None:
            _enum_value("clause semantics", self.semantics, Semantics)
        if self.layers is not None:
            if (isinstance(self.layers, str) or not self.layers
                    or not all(isinstance(n, str) for n in self.layers)):
                raise ScenarioError("clause layers must be a non-empty list "
                                    "of layer names (or omitted)")
            object.__setattr__(self, "layers", tuple(self.layers))
        rate_based = kind in (FaultType.BITFLIP, FaultType.STUCK_AT)
        if rate_based and (isinstance(self.count, str) or self.count):
            raise ScenarioError(f"{self.kind} clauses take a rate, not a count")
        if not rate_based:
            if isinstance(self.rate, str) or self.rate:
                raise ScenarioError(
                    f"{self.kind} clauses take a count, not a rate")
            if self.spatial != SpatialMode.IID.value:
                raise ScenarioError("spatial modes apply to rate-based "
                                    "clauses; line faults are whole-line "
                                    "events already")

    @property
    def lifetime_driven(self) -> bool:
        """Whether any parameter follows the endurance curves."""
        return isinstance(self.rate, str) or isinstance(self.count, str)

    def lower(self, point: LifetimePoint, rows: int, cols: int) -> FaultSpec:
        """Resolve this clause at one lifetime checkpoint into a
        :class:`~repro.core.faults.FaultSpec` the campaign engine runs."""
        kind = FaultType(self.kind)
        rate: float = 0.0
        count = 0
        if kind in (FaultType.BITFLIP, FaultType.STUCK_AT):
            if self.rate == "lifetime-stuck":
                rate = point.stuck_rate
            elif self.rate == "lifetime-upset":
                rate = point.bitflip_rate
            else:
                rate = float(self.rate)
            rate = min(1.0, max(0.0, rate * self.scale))
        else:
            axis = rows if kind == FaultType.FAULTY_ROWS else cols
            if self.count == COUNT_SOURCE:
                count = int(round(point.stuck_rate * self.scale * axis))
            else:
                count = int(round(self.count * self.scale))
            count = min(axis, max(0, count))
        return FaultSpec(
            kind, rate=rate, count=count,
            period=0 if self.period is None else self.period,
            polarity=_POLARITIES[self.polarity],
            semantics=None if self.semantics is None
            else Semantics(self.semantics),
            spatial=SpatialMode(self.spatial),
            cluster_size=self.cluster_size,
            layers=self.layers)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultClause":
        if not isinstance(data, dict):
            raise ScenarioError(f"clause must be a mapping, got {data!r}")
        _check_keys("clause", data, tuple(f.name for f in fields(cls)))
        if "layers" in data and data["layers"] is not None:
            data = dict(data, layers=tuple(data["layers"]))
        return cls(**data)


_POLARITIES = {
    "random": StuckPolarity.RANDOM,
    "stuck_at_0": StuckPolarity.STUCK_AT_0,
    "stuck_at_1": StuckPolarity.STUCK_AT_1,
}


@dataclass(frozen=True)
class Episode:
    """A named environment condition active for part of the workload.

    ``duty`` is the fraction of inferences spent under this environment
    (used for the duty-weighted blended trajectory); ``clauses`` are the
    *extra* faults the environment contributes on top of the scenario's
    base clauses — e.g. an SEU storm's transient burst.
    """

    name: str
    duty: float = 0.0
    clauses: tuple[FaultClause, ...] = ()

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError(f"episode name must be a non-empty string, "
                                f"got {self.name!r}")
        if self.name == NOMINAL_EPISODE:
            raise ScenarioError(
                f"episode name {NOMINAL_EPISODE!r} is reserved for the "
                "implicit baseline environment")
        if not (isinstance(self.duty, (int, float))
                and 0.0 <= self.duty <= 1.0):
            raise ScenarioError(f"episode duty must be in [0, 1], "
                                f"got {self.duty!r}")
        object.__setattr__(self, "clauses", tuple(self.clauses))

    @classmethod
    def from_dict(cls, data: dict) -> "Episode":
        if not isinstance(data, dict):
            raise ScenarioError(f"episode must be a mapping, got {data!r}")
        _check_keys("episode", data, ("name", "duty", "clauses"))
        clauses = tuple(FaultClause.from_dict(c)
                        for c in data.get("clauses", ()))
        return cls(name=data.get("name", ""), duty=data.get("duty", 0.0),
                   clauses=clauses)


@dataclass(frozen=True)
class Timeline:
    """Device-age checkpoints driving the lifetime curves.

    ``ages`` are cumulative switching-cycle counts (the x-axis of an
    accuracy-over-lifetime figure); ``cycles_per_inference`` feeds the
    transient-upset window; ``endurance`` is the Weibull model the
    ``lifetime-*`` clause references resolve against.
    """

    ages: tuple[float, ...]
    cycles_per_inference: float = 5500.0
    endurance: EnduranceModel = field(default_factory=EnduranceModel)

    def __post_init__(self):
        try:
            ages = tuple(float(age) for age in self.ages)
        except (TypeError, ValueError):
            raise ScenarioError(
                f"timeline ages must be numbers, got {self.ages!r}") from None
        if not ages:
            raise ScenarioError("timeline needs at least one age checkpoint")
        if any(not math.isfinite(age) or age < 0 for age in ages):
            raise ScenarioError(f"timeline ages must be finite and "
                                f"non-negative, got {list(ages)}")
        if list(ages) != sorted(ages):
            raise ScenarioError(f"timeline ages must be non-decreasing, "
                                f"got {list(ages)}")
        object.__setattr__(self, "ages", ages)
        if not (isinstance(self.cycles_per_inference, (int, float))
                and self.cycles_per_inference > 0):
            raise ScenarioError(
                f"cycles_per_inference must be positive, "
                f"got {self.cycles_per_inference!r}")

    def points(self) -> list[LifetimePoint]:
        """Fault rates at every checkpoint (the consumed
        :meth:`repro.lim.EnduranceModel.rates_at` API)."""
        return [self.endurance.rates_at(age, self.cycles_per_inference)
                for age in self.ages]

    @classmethod
    def from_dict(cls, data: dict) -> "Timeline":
        if not isinstance(data, dict):
            raise ScenarioError(f"timeline must be a mapping, got {data!r}")
        _check_keys("timeline", data,
                    ("ages", "cycles_per_inference", "endurance"))
        endurance = data.get("endurance", None)
        if isinstance(endurance, dict):
            _check_keys("timeline endurance", endurance,
                        ("mean_cycles", "shape", "upset_rate_per_cycle"))
            try:
                endurance = EnduranceModel(**endurance)
            except (TypeError, ValueError) as error:
                # TypeError covers non-numeric parameters reaching the
                # model's comparisons — still a malformed user spec
                raise ScenarioError(f"timeline endurance: {error}") from None
        elif endurance is None:
            endurance = EnduranceModel()
        elif not isinstance(endurance, EnduranceModel):
            raise ScenarioError(
                f"timeline endurance must be a mapping, got {endurance!r}")
        return cls(ages=tuple(data.get("ages", ())),
                   cycles_per_inference=data.get("cycles_per_inference",
                                                 5500.0),
                   endurance=endurance)


@dataclass(frozen=True)
class Scenario:
    """A composed lifetime/environment fault story.

    The grid the compiler lowers this to is ``timeline checkpoints ×
    environment episodes``: every checkpoint is evaluated under the
    nominal environment (unless ``include_nominal`` is false) and under
    each episode, with the episode's extra clauses added to the base
    clauses.  See :func:`repro.scenarios.compile_scenario`.
    """

    name: str
    clauses: tuple[FaultClause, ...]
    timeline: Timeline = field(
        default_factory=lambda: Timeline(ages=(0.0,)))
    episodes: tuple[Episode, ...] = ()
    include_nominal: bool = True
    description: str = ""

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError(f"scenario name must be a non-empty string, "
                                f"got {self.name!r}")
        object.__setattr__(self, "clauses", tuple(self.clauses))
        object.__setattr__(self, "episodes", tuple(self.episodes))
        if not self.clauses and not any(e.clauses for e in self.episodes):
            raise ScenarioError(f"scenario {self.name!r} declares no fault "
                                "clauses anywhere")
        names = [episode.name for episode in self.episodes]
        if len(set(names)) != len(names):
            raise ScenarioError(f"duplicate episode names in {names}")
        if not self.include_nominal and not self.episodes:
            raise ScenarioError(
                "a scenario without episodes must include the nominal "
                "environment (include_nominal=true)")
        total_duty = sum(episode.duty for episode in self.episodes)
        if total_duty > 1.0 + 1e-9:
            raise ScenarioError(f"episode duties sum to {total_duty:g} > 1")

    # -- derived views ---------------------------------------------------
    def episode_names(self) -> list[str]:
        """Environment column order of the compiled grid."""
        names = [NOMINAL_EPISODE] if self.include_nominal else []
        return names + [episode.name for episode in self.episodes]

    def duties(self) -> list[float]:
        """Workload fraction per environment, aligned with
        :meth:`episode_names`; the nominal environment absorbs whatever
        the episodes leave."""
        episode_duty = [episode.duty for episode in self.episodes]
        if self.include_nominal:
            return [max(0.0, 1.0 - sum(episode_duty))] + episode_duty
        return episode_duty

    def clauses_for(self, episode: str) -> tuple[FaultClause, ...]:
        """Base clauses plus the named environment's extras."""
        if episode == NOMINAL_EPISODE:
            return self.clauses
        for candidate in self.episodes:
            if candidate.name == episode:
                return self.clauses + candidate.clauses
        raise ScenarioError(f"unknown episode {episode!r}; "
                            f"have {self.episode_names()}")

    def layer_references(self) -> set[str]:
        """Every layer name any clause targets (for model validation)."""
        names: set[str] = set()
        for episode in (NOMINAL_EPISODE, *(e.name for e in self.episodes)):
            for clause in self.clauses_for(episode):
                if clause.layers is not None:
                    names.update(clause.layers)
        return names

    # -- loaders ---------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Build a scenario from a plain dict (the YAML/JSON document
        form); unknown keys raise :class:`ScenarioError`."""
        if not isinstance(data, dict):
            raise ScenarioError(f"scenario must be a mapping, got {data!r}")
        _check_keys("scenario", data,
                    ("name", "description", "timeline", "clauses",
                     "episodes", "include_nominal"))
        clauses = data.get("clauses", ())
        if not isinstance(clauses, (list, tuple)):
            raise ScenarioError(f"scenario clauses must be a list, "
                                f"got {clauses!r}")
        episodes = data.get("episodes", ())
        if not isinstance(episodes, (list, tuple)):
            raise ScenarioError(f"scenario episodes must be a list, "
                                f"got {episodes!r}")
        timeline = data.get("timeline", {"ages": (0.0,)})
        return cls(
            name=data.get("name", ""),
            description=data.get("description", ""),
            timeline=(timeline if isinstance(timeline, Timeline)
                      else Timeline.from_dict(timeline)),
            clauses=tuple(FaultClause.from_dict(c) for c in clauses),
            episodes=tuple(Episode.from_dict(e) for e in episodes),
            include_nominal=bool(data.get("include_nominal", True)))

    @classmethod
    def from_yaml(cls, text: str) -> "Scenario":
        """Parse a YAML (or JSON — a YAML subset) scenario document."""
        try:
            import yaml
        except ImportError:
            # YAML is an optional convenience; JSON documents always work
            try:
                data = json.loads(text)
            except json.JSONDecodeError:
                raise ScenarioError(
                    "PyYAML is not installed and the document is not JSON; "
                    "install pyyaml or use a .json scenario file") from None
            return cls.from_dict(data)
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as error:
            raise ScenarioError(f"malformed scenario YAML: {error}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path) -> "Scenario":
        """Load a scenario spec from a ``.yaml``/``.yml``/``.json`` file."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise ScenarioError(f"cannot read scenario file {path}: "
                                f"{error}") from None
        if path.suffix.lower() == ".json":
            try:
                data = json.loads(text)
            except json.JSONDecodeError as error:
                raise ScenarioError(f"malformed scenario JSON in {path}: "
                                    f"{error}") from None
            return cls.from_dict(data)
        return cls.from_yaml(text)
