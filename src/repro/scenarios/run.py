"""Scenario execution: compiled grids through the campaign engine.

:func:`run_scenario` is the one-call API: scenario (object, zoo name, or
spec file) + model + test set → a :class:`ScenarioResult` holding the
per-checkpoint, per-episode accuracy trajectory.  Under the hood it is a
plain :meth:`repro.core.FaultCampaign.run` over the compiled grid, so
every engine feature — pool executors, the packed backend, JSONL
journals with resume, shared-memory activation planes — applies
unchanged, and results are bit-identical across executor × backend
combinations under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .._compat import legacy
from ..core.campaign import FaultCampaign, SweepResult
from .compile import CompiledGrid, compile_scenario
from .spec import Scenario, ScenarioError

__all__ = ["ScenarioResult", "run_scenario", "resolve_scenario"]


def resolve_scenario(scenario) -> Scenario:
    """Accept a :class:`Scenario`, a zoo name, or a spec-file path."""
    if isinstance(scenario, Scenario):
        return scenario
    if isinstance(scenario, str):
        from .zoo import get_scenario, scenario_names
        if scenario in scenario_names():
            return get_scenario(scenario)
        if scenario.endswith((".yaml", ".yml", ".json")):
            return Scenario.from_file(scenario)
        raise ScenarioError(
            f"unknown scenario {scenario!r}; zoo scenarios: "
            f"{scenario_names()} (or pass a .yaml/.json spec file)")
    raise ScenarioError(f"cannot resolve a scenario from {scenario!r}")


@dataclass
class ScenarioResult:
    """Accuracy trajectory of one scenario run.

    ``accuracies[i, j, k]`` is the accuracy at timeline checkpoint ``i``
    under environment ``episodes[j]`` in repetition ``k``.  ``sweep`` is
    the underlying flat :class:`~repro.core.campaign.SweepResult` (cells
    in checkpoint-major order) with its usual ``meta`` bookkeeping.
    """

    scenario: Scenario
    grid: CompiledGrid
    sweep: SweepResult
    accuracies: np.ndarray
    baseline: float = float("nan")
    meta: dict = field(default_factory=dict)

    @property
    def ages(self) -> list[float]:
        return self.grid.ages

    @property
    def episodes(self) -> list[str]:
        return self.grid.episodes

    def trajectory(self, episode: str | None = None) -> np.ndarray:
        """Mean accuracy per checkpoint for one environment column
        (default: the first — nominal when included)."""
        column = 0 if episode is None else self._column(episode)
        return self.accuracies[:, column, :].mean(axis=1)

    def std(self, episode: str | None = None) -> np.ndarray:
        """Per-checkpoint sample std (ddof=1, matching
        :meth:`SweepResult.std`); 0 for a single repetition."""
        column = 0 if episode is None else self._column(episode)
        samples = self.accuracies[:, column, :]
        if samples.shape[1] <= 1:
            return np.zeros(samples.shape[0])
        return samples.std(axis=1, ddof=1)

    def blended_trajectory(self) -> np.ndarray:
        """Duty-weighted mean accuracy per checkpoint: the expected
        accuracy of a workload spending each environment's ``duty``
        fraction of inferences in it."""
        duties = np.asarray(self.grid.duties, dtype=np.float64)
        total = duties.sum()
        if total <= 0:
            return self.trajectory()
        weights = duties / total
        per_episode = self.accuracies.mean(axis=2)  # (checkpoints, episodes)
        return per_episode @ weights

    def as_rows(self) -> list[dict]:
        """One record per checkpoint: age, lifetime rates, per-episode
        mean/std accuracy, and the blended value."""
        blended = self.blended_trajectory()
        rows = []
        for i, age in enumerate(self.ages):
            cell = self.grid.cells[i * self.grid.n_episodes]
            record = {"checkpoint": i, "age": age,
                      "stuck_rate": cell.stuck_rate,
                      "upset_rate": cell.upset_rate,
                      "blended": float(blended[i]), "episodes": {}}
            for j, episode in enumerate(self.episodes):
                samples = self.accuracies[i, j, :]
                std = (0.0 if samples.size <= 1
                       else float(samples.std(ddof=1)))
                record["episodes"][episode] = {
                    "mean": float(samples.mean()), "std": std}
            rows.append(record)
        return rows

    def _column(self, episode: str) -> int:
        try:
            return self.episodes.index(episode)
        except ValueError:
            raise ScenarioError(f"unknown episode {episode!r}; "
                                f"have {self.episodes}") from None

    def __repr__(self):
        points = ", ".join(
            f"{age:g}:{m:.3f}"
            for age, m in zip(self.ages, self.blended_trajectory()))
        return (f"<ScenarioResult {self.scenario.name} "
                f"[{points}] x{self.grid.n_episodes} episodes>")


@legacy("repro.api.run('<scenario-name>', ...) / repro run <scenario-name>")
def run_scenario(scenario, model, x_test, y_test, *,
                 repeats: int = 3, seed: int = 0,
                 rows: int = 40, cols: int = 10, batch_size: int = 256,
                 executor: str | object = "serial",
                 n_jobs: int | None = None, backend: str = "float",
                 cache_bytes: int | None = None, policy=None, layers=None,
                 journal=None,
                 progress: Callable[[int, int, tuple], None] | None = None,
                 grid: CompiledGrid | None = None) -> ScenarioResult:
    """Compile ``scenario`` and run it as one fault campaign.

    Parameters mirror :class:`~repro.core.FaultCampaign` /
    :meth:`~repro.core.FaultCampaign.run`; ``scenario`` may be a
    :class:`Scenario`, a zoo name (``"end-of-life"``), or a
    ``.yaml``/``.json`` spec path.  ``layers`` optionally restricts the
    whole scenario to a mapped-layer subset on top of any per-clause
    targeting.  ``grid`` accepts an already compiled grid (compilation
    is deterministic, so a caller that compiled for introspection —
    e.g. the :mod:`repro.api` checkpoint-event wrapper — need not pay
    it twice).  Each cell's fault plans are pre-generated from seeds
    that are pure functions of the grid coordinates, so the returned
    trajectory is bit-identical across executors and backends.
    """
    scenario = resolve_scenario(scenario)
    if grid is None:
        grid = compile_scenario(scenario, model, rows=rows, cols=cols)
    with FaultCampaign(model, x_test, y_test, rows=rows, cols=cols,
                       batch_size=batch_size, executor=executor,
                       n_jobs=n_jobs, backend=backend,
                       cache_bytes=cache_bytes, policy=policy) as campaign:
        sweep = campaign.run(grid.spec_factory, xs=grid.xs, repeats=repeats,
                             seed=seed, layers=layers, label=scenario.name,
                             journal=journal, progress=progress)
    accuracies = sweep.accuracies.reshape(
        grid.n_checkpoints, grid.n_episodes, repeats)
    meta = dict(sweep.meta, scenario=scenario.name,
                checkpoints=grid.n_checkpoints, episodes=grid.episodes)
    return ScenarioResult(scenario=scenario, grid=grid, sweep=sweep,
                          accuracies=accuracies, baseline=sweep.baseline,
                          meta=meta)
