"""The scenario zoo: named lifetime/environment stories, ready to run.

Six canonical stories cover the paper's fault vocabulary composed over
time and environment (plus the spatially-correlated placement the
variation-attack literature shows behaves qualitatively differently from
i.i.d. masks).  Each entry is a builder so every
:func:`get_scenario` call returns a fresh, immutable
:class:`~repro.scenarios.spec.Scenario`.

=========================  =================================================
name                       story
=========================  =================================================
fresh-device               early life: endurance faults are negligible,
                           only the ambient transient-upset floor exists
mid-life-drift             temporal variation accumulates stuck cells
                           through mid-life (i.i.d. placement)
end-of-life                wear-out regime around and past the mean
                           endurance, plus a transient background
seu-storm                  a radiation episode: dynamic bit-flip bursts
                           active for a duty fraction of inferences
clustered-variation-attack accelerated, spatially-clustered stuck cells
                           (correlated variation / targeted stress)
row-driver-failure         structural decay: whole crossbar rows drop out
                           as drivers fail, with a row-burst prelude
=========================  =================================================
"""

from __future__ import annotations

from typing import Callable

from ..lim.reliability import EnduranceModel
from .spec import Episode, FaultClause, Scenario, ScenarioError, Timeline

__all__ = ["SCENARIO_BUILDERS", "get_scenario", "scenario_names"]

#: shared reference device: 1e8-cycle Weibull wear-out endurance with a
#: small ambient upset floor (see repro.lim.reliability)
_DEVICE = dict(mean_cycles=1e8, shape=2.0, upset_rate_per_cycle=1e-10)
#: crossbar switching activity per inference (IMPLY program ~11 writes
#: per XNOR times the scheduler's cell reuse; see
#: examples/lifetime_reliability.py)
_CYCLES_PER_INFERENCE = 5500.0


def _timeline(ages, **device) -> Timeline:
    return Timeline(ages=tuple(ages),
                    cycles_per_inference=_CYCLES_PER_INFERENCE,
                    endurance=EnduranceModel(**{**_DEVICE, **device}))


def _fresh_device() -> Scenario:
    return Scenario(
        name="fresh-device",
        description="Early life: wear-out is negligible; only the ambient "
                    "transient-upset floor is active.",
        timeline=_timeline((0.0, 1e6, 5e6)),
        clauses=(
            FaultClause(kind="stuck_at", rate="lifetime-stuck"),
            FaultClause(kind="bitflip", rate="lifetime-upset"),
        ))


def _mid_life_drift() -> Scenario:
    return Scenario(
        name="mid-life-drift",
        description="Temporal variation accumulates i.i.d. stuck cells "
                    "through mid-life; transients stay at the ambient "
                    "floor.",
        timeline=_timeline((1e7, 2e7, 3e7, 4e7, 5e7)),
        clauses=(
            FaultClause(kind="stuck_at", rate="lifetime-stuck"),
            FaultClause(kind="bitflip", rate="lifetime-upset"),
        ))


def _end_of_life() -> Scenario:
    return Scenario(
        name="end-of-life",
        description="Wear-out regime around and past the mean endurance: "
                    "the stuck fraction follows the Weibull CDF into "
                    "failure, over a constant transient background.",
        timeline=_timeline((2e7, 5e7, 8e7, 1.1e8, 1.4e8)),
        clauses=(
            FaultClause(kind="stuck_at", rate="lifetime-stuck"),
            FaultClause(kind="bitflip", rate=0.01),
        ))


def _seu_storm() -> Scenario:
    return Scenario(
        name="seu-storm",
        description="A radiation episode on a young device: for a tenth "
                    "of the workload, dynamic single-event upsets flip "
                    "5% of cells every 2nd XNOR operation.",
        timeline=_timeline((1e7, 3e7)),
        clauses=(
            FaultClause(kind="stuck_at", rate="lifetime-stuck"),
        ),
        episodes=(
            Episode(name="storm", duty=0.1, clauses=(
                FaultClause(kind="bitflip", rate=0.05, period=2),
            )),
        ))


def _clustered_variation_attack() -> Scenario:
    return Scenario(
        name="clustered-variation-attack",
        description="Accelerated, spatially-clustered stuck cells — the "
                    "correlated-variation regime (arXiv:2302.09902) where "
                    "equal rates hit harder than i.i.d. placement.",
        timeline=_timeline((2e7, 4e7, 6e7)),
        clauses=(
            FaultClause(kind="stuck_at", rate="lifetime-stuck", scale=2.0,
                        spatial="clustered", cluster_size=8),
            FaultClause(kind="bitflip", rate="lifetime-upset"),
        ))


def _row_driver_failure() -> Scenario:
    return Scenario(
        name="row-driver-failure",
        description="Structural decay: whole crossbar rows drop out as "
                    "drivers fail (count follows the wear curve), after "
                    "a row-burst prelude of weak cells.",
        timeline=_timeline((2e7, 6e7, 1e8)),
        clauses=(
            FaultClause(kind="faulty_rows", count="lifetime", scale=0.5),
            FaultClause(kind="stuck_at", rate="lifetime-stuck", scale=0.5,
                        spatial="row_burst", cluster_size=2),
        ))


SCENARIO_BUILDERS: dict[str, Callable[[], Scenario]] = {
    "fresh-device": _fresh_device,
    "mid-life-drift": _mid_life_drift,
    "end-of-life": _end_of_life,
    "seu-storm": _seu_storm,
    "clustered-variation-attack": _clustered_variation_attack,
    "row-driver-failure": _row_driver_failure,
}


def scenario_names() -> list[str]:
    """Registered zoo scenario names, in registry order."""
    return list(SCENARIO_BUILDERS)


def get_scenario(name: str) -> Scenario:
    """A fresh :class:`Scenario` for a zoo name.

    Raises
    ------
    ScenarioError
        If ``name`` is not registered (the CLI maps this to exit 2).
    """
    builder = SCENARIO_BUILDERS.get(name)
    if builder is None:
        raise ScenarioError(f"unknown scenario {name!r}; "
                            f"available: {scenario_names()}")
    return builder()
