"""repro.scenarios — declarative lifetime/environment fault scenarios.

The scenario subsystem turns the engine from a figure-reproducer into a
platform: a declarative spec layer (:mod:`.spec`) describes *stories* —
fault clauses driven by lifetime endurance curves, spatially-correlated
placement, environment episodes — a compiler (:mod:`.compile`) lowers
them onto the existing campaign grid, and a zoo (:mod:`.zoo`) ships six
named stories runnable from the CLI (``repro scenarios run/list``) or
the :func:`run_scenario` API.
"""

from .compile import CompiledCell, CompiledGrid, compile_scenario
from .run import ScenarioResult, resolve_scenario, run_scenario
from .spec import (NOMINAL_EPISODE, Episode, FaultClause, Scenario,
                   ScenarioError, Timeline)
from .zoo import SCENARIO_BUILDERS, get_scenario, scenario_names

__all__ = [
    "FaultClause", "Episode", "Timeline", "Scenario", "ScenarioError",
    "NOMINAL_EPISODE",
    "CompiledCell", "CompiledGrid", "compile_scenario",
    "ScenarioResult", "run_scenario", "resolve_scenario",
    "SCENARIO_BUILDERS", "get_scenario", "scenario_names",
]
