"""Experiment runners for the paper's Fig. 4 (layer resilience + runtime).

Every runner returns the series the corresponding sub-figure plots;
the benchmarks print them and write CSVs under ``artifacts/``.

The paper's protocol: binary LeNet on MNIST, "each layer is mapped onto a
single crossbar while sweeping the injection rate", every experiment
repeated with fresh seeds; the row/column study instantiates a 40×10
crossbar per layer.
"""

from __future__ import annotations

from .._compat import legacy
from ..analysis.runtime import RuntimeSample, extrapolate, measure, speedup_table
from ..core import FaultCampaign, FaultInjector, FaultGenerator, FaultSpec, SweepResult
from ..data import Dataset
from ..lim import CrossbarConfig, XFaultSimulator
from ..models.lenet import LENET_MAPPED_LAYERS
from ..nn.model import Sequential

__all__ = ["DEFAULT_RATES", "layer_sweeps", "run_fig4a", "run_fig4b",
           "run_fig4c", "run_fig4d", "run_fig4e", "run_fig4f"]

#: the paper sweeps 0..30% injection rate in Fig. 4a/4b
DEFAULT_RATES = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30)


def _campaign(model: Sequential, test: Dataset, rows: int, cols: int,
              executor: str | object = "serial", n_jobs: int | None = None,
              backend: str = "float",
              cache_bytes: int | None = None) -> FaultCampaign:
    return FaultCampaign(model, test.x, test.y, rows=rows, cols=cols,
                         executor=executor, n_jobs=n_jobs, backend=backend,
                         cache_bytes=cache_bytes)


def _series_hooks(progress, journal_for, name):
    """Per-series campaign hooks from the driver-level ones.

    ``progress(series, done, total, cell)`` narrows to the engine's
    ``progress(done, total, cell)`` for one series; ``journal_for(name)``
    yields that series' own journal path (each series is its own grid,
    so each needs its own fingerprinted journal).
    """
    campaign_progress = None
    if progress is not None:
        def campaign_progress(done, total, cell, _name=name):
            progress(_name, done, total, cell)
    journal = journal_for(name) if journal_for is not None else None
    return campaign_progress, journal


def layer_sweeps(model: Sequential, test: Dataset, spec_factory,
                 xs, repeats: int, rows: int = 40, cols: int = 10,
                 layer_names=LENET_MAPPED_LAYERS, seed: int = 0,
                 executor: str | object = "serial", n_jobs: int | None = None,
                 backend: str = "float", cache_bytes: int | None = None,
                 progress=None, journal_for=None) -> dict[str, SweepResult]:
    """Per-layer sweeps plus the 'combined' all-layer sweep (Fig. 4a/b).

    The campaign engine options (``executor``/``n_jobs``/``backend``/
    ``cache_bytes``) pass straight through, so every Fig. 4 scenario can
    run on the pool executors and the packed backend — all bit-identical
    to serial/float.  ``progress(series, done, total, cell)`` and
    ``journal_for(series) -> path`` are the streaming hooks of the
    :mod:`repro.api` layer: one callback / journal per series curve.
    """
    campaign = _campaign(model, test, rows, cols, executor, n_jobs, backend,
                         cache_bytes)
    results: dict[str, SweepResult] = {}
    for name in (*layer_names, "combined"):
        campaign_progress, journal = _series_hooks(progress, journal_for,
                                                   name)
        results[name] = campaign.run(
            spec_factory, xs, repeats=repeats, seed=seed,
            layers=None if name == "combined" else [name], label=name,
            journal=journal, progress=campaign_progress)
    return results


@legacy("repro.api.run('fig4a', ...) / repro run fig4a")
def run_fig4a(model: Sequential, test: Dataset, rates=DEFAULT_RATES,
              repeats: int = 10, rows: int = 40, cols: int = 10,
              seed: int = 0, **engine) -> dict[str, SweepResult]:
    """Fig. 4a: bit-flip injection rate vs accuracy, per layer."""
    return layer_sweeps(model, test, FaultSpec.bitflip, rates, repeats,
                        rows, cols, seed=seed, **engine)


@legacy("repro.api.run('fig4b', ...) / repro run fig4b")
def run_fig4b(model: Sequential, test: Dataset, rates=DEFAULT_RATES,
              repeats: int = 10, rows: int = 40, cols: int = 10,
              seed: int = 0, **engine) -> dict[str, SweepResult]:
    """Fig. 4b: stuck-at injection rate vs accuracy, per layer."""
    return layer_sweeps(model, test, FaultSpec.stuck_at, rates, repeats,
                        rows, cols, seed=seed, **engine)


@legacy("repro.api.run('fig4c', ...) / repro run fig4c")
def run_fig4c(model: Sequential, test: Dataset, periods=(0, 1, 2, 3, 4),
              rate: float = 0.10, repeats: int = 10, rows: int = 40,
              cols: int = 10, seed: int = 0, executor: str | object = "serial",
              n_jobs: int | None = None, backend: str = "float",
              cache_bytes: int | None = None, journal=None,
              progress=None) -> SweepResult:
    """Fig. 4c: dynamic faults — sensitization period vs accuracy.

    ``period`` counts the XNOR operations needed to sensitize the fault;
    0/1 fire on every operation (the static case).  ``journal`` /
    ``progress`` forward to :meth:`FaultCampaign.run` unchanged (one
    grid, one journal).
    """
    campaign = _campaign(model, test, rows, cols, executor, n_jobs, backend,
                         cache_bytes)
    return campaign.run(
        lambda n: FaultSpec.bitflip(rate, period=int(n)),
        xs=list(periods), repeats=repeats, seed=seed, label="dynamic",
        journal=journal, progress=progress)


def _line_sweeps(model, test, spec_for_count, counts, repeats, rows, cols,
                 seed, layer_names, executor, n_jobs, backend, cache_bytes,
                 progress, journal_for) -> dict[str, SweepResult]:
    """Shared faulty-line driver (Fig. 4d columns / Fig. 4e rows)."""
    campaign = _campaign(model, test, rows, cols, executor, n_jobs, backend,
                         cache_bytes)
    results = {}
    for name in layer_names:
        campaign_progress, journal = _series_hooks(progress, journal_for,
                                                   name)
        results[name] = campaign.run(
            spec_for_count, xs=list(counts), repeats=repeats, seed=seed,
            layers=[name], label=name, journal=journal,
            progress=campaign_progress)
    return results


@legacy("repro.api.run('fig4d', ...) / repro run fig4d")
def run_fig4d(model: Sequential, test: Dataset, counts=(0, 1, 2, 3, 4),
              repeats: int = 10, rows: int = 40, cols: int = 10,
              seed: int = 0, layer_names=LENET_MAPPED_LAYERS,
              executor: str | object = "serial", n_jobs: int | None = None,
              backend: str = "float", cache_bytes: int | None = None,
              progress=None, journal_for=None) -> dict[str, SweepResult]:
    """Fig. 4d: number of faulty crossbar columns vs accuracy, per layer."""
    return _line_sweeps(model, test,
                        lambda c: FaultSpec.faulty_columns(int(c)),
                        counts, repeats, rows, cols, seed, layer_names,
                        executor, n_jobs, backend, cache_bytes,
                        progress, journal_for)


@legacy("repro.api.run('fig4e', ...) / repro run fig4e")
def run_fig4e(model: Sequential, test: Dataset,
              counts=(0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20),
              repeats: int = 10, rows: int = 40, cols: int = 10,
              seed: int = 0, layer_names=LENET_MAPPED_LAYERS,
              executor: str | object = "serial", n_jobs: int | None = None,
              backend: str = "float", cache_bytes: int | None = None,
              progress=None, journal_for=None) -> dict[str, SweepResult]:
    """Fig. 4e: number of faulty crossbar rows vs accuracy, per layer."""
    return _line_sweeps(model, test,
                        lambda r: FaultSpec.faulty_rows(int(r)),
                        counts, repeats, rows, cols, seed, layer_names,
                        executor, n_jobs, backend, cache_bytes,
                        progress, journal_for)


@legacy("repro.api.run('fig4f', ...) / repro run fig4f")
def run_fig4f(model: Sequential, test: Dataset, passes: int = 3,
              xfault_images: int = 2, serial_images: int = 1,
              rows: int = 40, cols: int = 10,
              gate_family: str = "imply", seed: int = 0
              ) -> dict[str, object]:
    """Fig. 4f: runtime of X-Fault vs FLIM vs vanilla on the test set.

    Protocol mirrors the paper: vanilla and FLIM run ``passes`` full
    passes over the test set (the paper uses fifty); the device-level
    baselines are measured on a handful of images and extrapolated to the
    full workload ("we estimate the total run time of X-Fault based on
    five images").  Two device baselines are reported:

    * ``X-Fault`` — gate-serial evaluation, X-Fault's per-memristor cost
      model (the paper's comparison point);
    * ``device-tile`` — our tile-vectorized device simulator, a faster
      but still device-granular execution.

    During the FLIM measurement the injection mechanism maps the
    operations but injects no actual faults.
    """
    images = len(test.x) * passes

    def run_vanilla():
        for _ in range(passes):
            model.predict(test.x)

    vanilla = measure("vanilla", run_vanilla, images)

    generator = FaultGenerator(FaultSpec.bitflip(0.0), rows=rows, cols=cols,
                               seed=seed)
    plan = generator.generate(model)
    injector = FaultInjector(force_hooks=True)
    with injector.injecting(model, plan):
        flim = measure("FLIM", run_vanilla, images)

    config = CrossbarConfig(rows=rows, cols=cols, gate_family=gate_family,
                            seed=seed)
    tile_sim = XFaultSimulator(model, config)
    x_tile = test.x[:xfault_images]
    tile_sample = measure("device-tile", lambda: tile_sim.run(x_tile),
                          xfault_images)
    device_tile = extrapolate(tile_sample, images)

    serial_sim = XFaultSimulator(model, config, gate_serial=True)
    x_serial = test.x[:serial_images]
    serial_sample = measure("X-Fault", lambda: serial_sim.run(x_serial),
                            serial_images)
    xfault = extrapolate(serial_sample, images)

    samples: list[RuntimeSample] = [xfault, device_tile, flim, vanilla]
    return {
        "samples": samples,
        "table": speedup_table(samples, reference="X-Fault"),
        "images": images,
    }
