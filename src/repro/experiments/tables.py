"""Experiment runners for the paper's tables.

Table I records the experimental setup (we capture the host this
reproduction actually ran on); Table II the characteristics of the nine
BNN models (computed from our scaled implementations, printed next to the
paper's reference values).
"""

from __future__ import annotations

import os
import platform
import sys

import numpy as np

from ..models import compute_stats, format_count
from ..models.zoo import MODEL_PAPER_STATS, model_names
from .common import get_imagenet, trained_zoo_model

__all__ = ["table1_setup", "table2_model_stats"]


def _total_ram_gb() -> float | None:
    try:
        with open("/proc/meminfo") as handle:
            for line in handle:
                if line.startswith("MemTotal:"):
                    return int(line.split()[1]) / 1024 / 1024
    except OSError:
        pass
    return None


def table1_setup() -> list[tuple[str, str]]:
    """The adopted experimental setup, like the paper's Table I.

    The paper ran on a Ryzen 7 5800X with an RTX 3080 Ti; this
    reproduction is CPU-only numpy, so the software rows list the numpy
    stack instead of CUDA/TensorFlow.
    """
    ram = _total_ram_gb()
    rows = [
        ("CPU", platform.processor() or platform.machine()),
        ("CPU cores", str(os.cpu_count())),
        ("RAM", f"{ram:.0f} GB" if ram else "unknown"),
        ("GPU", "none (CPU-only reproduction)"),
        ("OS", platform.platform()),
        ("Python", sys.version.split()[0]),
        ("numpy", np.__version__),
        ("FLIM implementation", "repro 1.0.0 (numpy fast path)"),
    ]
    return rows


def table2_model_stats(models: list[str] | None = None,
                       measure_accuracy: bool = True) -> list[dict[str, object]]:
    """Table II: per-model Top-1, size, params, MACs, binarized %.

    Every row carries both our measured values (scaled models on the
    synthetic task) and the paper's reference values for comparison.
    """
    if models is None:
        models = model_names()
    _, test = get_imagenet()
    rows = []
    for name in models:
        model = trained_zoo_model(name)
        stats = compute_stats(model)
        paper_top1, paper_size, paper_params, paper_macs, paper_bin = \
            MODEL_PAPER_STATS[name]
        row = {
            "model": name,
            "top1_pct": (round(100 * model.evaluate(test.x, test.y), 1)
                         if measure_accuracy else float("nan")),
            "size_mb": round(stats.size_mb, 4),
            "params": format_count(stats.params),
            "macs": format_count(stats.macs),
            "binarized_pct": round(stats.binarized_percent, 2),
            "paper_top1_pct": paper_top1,
            "paper_size_mb": paper_size,
            "paper_params": paper_params,
            "paper_macs": paper_macs,
            "paper_binarized_pct": paper_bin,
        }
        rows.append(row)
    return rows
