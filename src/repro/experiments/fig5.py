"""Experiment runners for the paper's Fig. 5 (model resilience).

Nine BNN architectures, faults injected into every mapped layer, hundred
repetitions in the paper (configurable here).  The sweep ranges follow the
paper's axes: bit-flips 0-20%, stuck-at 0-2%, dynamic periods 0-5.
"""

from __future__ import annotations

from .._compat import legacy
from ..core import FaultCampaign, FaultSpec, SweepResult
from ..data import Dataset
from ..models.zoo import model_names
from .common import get_imagenet, trained_zoo_model

__all__ = ["BITFLIP_RATES", "STUCKAT_RATES", "DYNAMIC_PERIODS",
           "model_sweep", "run_fig5a", "run_fig5b", "run_fig5c"]

#: Fig. 5a sweeps bit-flips over 0-20%
BITFLIP_RATES = (0.0, 0.025, 0.05, 0.10, 0.15, 0.20)
#: Fig. 5b sweeps stuck-at over 0-2% — an order of magnitude tighter
STUCKAT_RATES = (0.0, 0.0025, 0.005, 0.01, 0.015, 0.02)
#: Fig. 5c sweeps the dynamic sensitization period 0-5
DYNAMIC_PERIODS = (0, 1, 2, 3, 4, 5)


def model_sweep(spec_factory, xs, models: list[str] | None = None,
                repeats: int = 5, rows: int = 40, cols: int = 10,
                seed: int = 0, test: Dataset | None = None,
                executor: str | object = "serial", n_jobs: int | None = None,
                backend: str = "float", cache_bytes: int | None = None,
                progress=None, journal_for=None) -> dict[str, SweepResult]:
    """Run one sweep on every zoo model; returns label -> SweepResult.

    The campaign engine options (``executor``/``n_jobs``/``backend``/
    ``cache_bytes``) pass straight through, so the nine-architecture
    grids can run on the pool executors and the packed backend — all
    bit-identical to serial/float.  ``progress(series, done, total,
    cell)`` and ``journal_for(series) -> path`` stream/journal one model
    curve at a time (each model is its own campaign grid).
    """
    if models is None:
        models = model_names()
    if test is None:
        _, test = get_imagenet()
    results: dict[str, SweepResult] = {}
    for name in models:
        model = trained_zoo_model(name)
        campaign = FaultCampaign(model, test.x, test.y, rows=rows, cols=cols,
                                 executor=executor, n_jobs=n_jobs,
                                 backend=backend, cache_bytes=cache_bytes)
        campaign_progress = None
        if progress is not None:
            def campaign_progress(done, total, cell, _name=name):
                progress(_name, done, total, cell)
        journal = journal_for(name) if journal_for is not None else None
        results[name] = campaign.run(spec_factory, xs, repeats=repeats,
                                     seed=seed, label=name, journal=journal,
                                     progress=campaign_progress)
    return results


@legacy("repro.api.run('fig5a', ...) / repro run fig5a")
def run_fig5a(models: list[str] | None = None, rates=BITFLIP_RATES,
              repeats: int = 5, seed: int = 0, **kwargs) -> dict[str, SweepResult]:
    """Fig. 5a: bit-flip rate vs accuracy across architectures."""
    return model_sweep(FaultSpec.bitflip, list(rates), models=models,
                       repeats=repeats, seed=seed, **kwargs)


@legacy("repro.api.run('fig5b', ...) / repro run fig5b")
def run_fig5b(models: list[str] | None = None, rates=STUCKAT_RATES,
              repeats: int = 5, seed: int = 0, **kwargs) -> dict[str, SweepResult]:
    """Fig. 5b: stuck-at rate vs accuracy across architectures."""
    return model_sweep(FaultSpec.stuck_at, list(rates), models=models,
                       repeats=repeats, seed=seed, **kwargs)


@legacy("repro.api.run('fig5c', ...) / repro run fig5c")
def run_fig5c(models: list[str] | None = None, periods=DYNAMIC_PERIODS,
              rate: float = 0.10, repeats: int = 5, seed: int = 0,
              **kwargs) -> dict[str, SweepResult]:
    """Fig. 5c: dynamic-fault period vs accuracy across architectures."""
    return model_sweep(lambda n: FaultSpec.bitflip(rate, period=int(n)),
                       list(periods), models=models, repeats=repeats,
                       seed=seed, **kwargs)
