"""Lifetime-trajectory experiment driver (the scenario-platform figure).

Where :mod:`repro.experiments.fig4` reproduces the paper's single-axis
sweeps, this driver runs a declarative scenario
(:mod:`repro.scenarios`) and returns the accuracy-over-device-age
trajectory — the figure an operator reads to schedule replacement or
mitigation.  Engine options (executor / n_jobs / backend) pass straight
through and stay bit-identical under fixed seeds.
"""

from __future__ import annotations

from ..data import Dataset
from ..nn.model import Sequential
from ..scenarios import ScenarioResult, run_scenario

__all__ = ["run_lifetime_trajectory", "trajectory_series"]


def run_lifetime_trajectory(model: Sequential, test: Dataset,
                            scenario: str | object = "end-of-life",
                            repeats: int = 3, rows: int = 40, cols: int = 10,
                            seed: int = 0,
                            executor: str | object = "serial",
                            n_jobs: int | None = None,
                            backend: str = "float") -> ScenarioResult:
    """Run ``scenario`` (zoo name, spec path, or Scenario) on a model.

    Returns the full :class:`~repro.scenarios.ScenarioResult`; use
    :func:`trajectory_series` for the plottable (ages, accuracies)
    series per environment.
    """
    return run_scenario(scenario, model, test.x, test.y, repeats=repeats,
                        seed=seed, rows=rows, cols=cols, executor=executor,
                        n_jobs=n_jobs, backend=backend)


def trajectory_series(result: ScenarioResult
                      ) -> dict[str, tuple[list[float], list[float]]]:
    """Per-environment ``(ages, accuracy%)`` series for plotting, plus a
    duty-weighted ``"blended"`` series when several environments exist."""
    series: dict[str, tuple[list[float], list[float]]] = {}
    for episode in result.episodes:
        series[episode] = (list(result.ages),
                           [100 * a for a in result.trajectory(episode)])
    if len(result.episodes) > 1:
        series["blended"] = (list(result.ages),
                             [100 * a for a in result.blended_trajectory()])
    return series
