"""Lifetime-trajectory experiment driver (the scenario-platform figure).

Where :mod:`repro.experiments.fig4` reproduces the paper's single-axis
sweeps, this driver runs a declarative scenario
(:mod:`repro.scenarios`) and returns the accuracy-over-device-age
trajectory — the figure an operator reads to schedule replacement or
mitigation.  Engine options (executor / n_jobs / backend /
cache_bytes), journaling, and streaming progress pass straight through
and stay bit-identical under fixed seeds.  The :mod:`repro.api`
registry runs every zoo story through this driver.
"""

from __future__ import annotations

from ..data import Dataset
from ..nn.model import Sequential
from ..scenarios import ScenarioResult, run_scenario

__all__ = ["run_lifetime_trajectory", "trajectory_series"]


def run_lifetime_trajectory(model: Sequential, test: Dataset,
                            scenario: str | object = "end-of-life",
                            repeats: int = 3, rows: int = 40, cols: int = 10,
                            seed: int = 0,
                            executor: str | object = "serial",
                            n_jobs: int | None = None,
                            backend: str = "float",
                            cache_bytes: int | None = None,
                            journal=None, progress=None,
                            grid=None) -> ScenarioResult:
    """Run ``scenario`` (zoo name, spec path, or Scenario) on a model.

    Returns the full :class:`~repro.scenarios.ScenarioResult`; use
    :func:`trajectory_series` for the plottable (ages, accuracies)
    series per environment.  ``journal``/``progress``/``grid`` forward
    to :func:`repro.scenarios.run_scenario` unchanged (one compiled
    grid is one campaign).
    """
    # .__wrapped__ skips the legacy-entry-point DeprecationWarning: this
    # driver *is* the supported path the registry runs scenarios through
    return run_scenario.__wrapped__(
        scenario, model, test.x, test.y, repeats=repeats,
        seed=seed, rows=rows, cols=cols, executor=executor,
        n_jobs=n_jobs, backend=backend, cache_bytes=cache_bytes,
        journal=journal, progress=progress, grid=grid)


def trajectory_series(result: ScenarioResult
                      ) -> dict[str, tuple[list[float], list[float]]]:
    """Per-environment ``(ages, accuracy%)`` series for plotting, plus a
    duty-weighted ``"blended"`` series when several environments exist."""
    series: dict[str, tuple[list[float], list[float]]] = {}
    for episode in result.episodes:
        series[episode] = (list(result.ages),
                           [100 * a for a in result.trajectory(episode)])
    if len(result.episodes) > 1:
        series["blended"] = (list(result.ages),
                             [100 * a for a in result.blended_trajectory()])
    return series
