"""Per-figure experiment runners (the paper's §IV evaluation)."""

from . import common, fig4, fig5, tables
from .common import (get_imagenet, get_mnist, trained_lenet,
                     trained_zoo_model)

__all__ = ["common", "fig4", "fig5", "tables",
           "get_mnist", "get_imagenet", "trained_lenet", "trained_zoo_model"]
