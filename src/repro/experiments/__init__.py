"""Per-figure experiment runners (the paper's §IV evaluation, plus the
scenario-platform lifetime trajectories)."""

from . import common, fig4, fig5, lifetime, tables
from .common import (get_imagenet, get_mnist, trained_lenet,
                     trained_zoo_model)
from .lifetime import run_lifetime_trajectory, trajectory_series

__all__ = ["common", "fig4", "fig5", "lifetime", "tables",
           "get_mnist", "get_imagenet", "trained_lenet", "trained_zoo_model",
           "run_lifetime_trajectory", "trajectory_series"]
