"""Shared experiment plumbing: datasets, trained-model caching, configs.

Training is the expensive one-time substrate of the evaluation; weights
are cached as ``.npz`` under the cache directory (``REPRO_CACHE_DIR`` or
``<repo>/artifacts/cache``) so every benchmark and example re-uses them.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from .. import nn
from ..data import Dataset, load_synth_imagenet, load_synth_mnist
from ..models import build_lenet, build_model
from ..models.zoo import MODEL_BUILDERS

__all__ = ["cache_dir", "get_mnist", "get_imagenet", "trained_lenet",
           "trained_zoo_model", "MNIST_TEST_SIZE", "IMAGENET_TEST_SIZE"]

#: default evaluation sizes — small enough for CPU sweeps, large enough
#: for stable accuracy estimates (the paper's repetitions do the averaging)
MNIST_TEST_SIZE = 800
IMAGENET_TEST_SIZE = 400

#: per-family training schedules (learning rate, epochs)
_TRAIN_SCHEDULE = {
    "default": (2e-3, 6),
    "binary_densenet28": (5e-3, 8),
    "binary_densenet37": (5e-3, 8),
    "binary_densenet45": (5e-3, 8),
    "meliusnet22": (5e-3, 8),
}


def cache_dir() -> Path:
    """Weight-cache directory (created on demand)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        path = Path(env)
    else:
        repo = Path(__file__).resolve().parents[3]
        path = repo / "artifacts" / "cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


@lru_cache(maxsize=4)
def get_mnist(n_train: int = 3000, n_test: int = MNIST_TEST_SIZE,
              seed: int = 42) -> tuple[Dataset, Dataset]:
    """(train, test) synthetic-MNIST datasets (memoized per process)."""
    (x_tr, y_tr), (x_te, y_te) = load_synth_mnist(n_train, n_test, seed)
    return Dataset(x_tr, y_tr), Dataset(x_te, y_te)


@lru_cache(maxsize=4)
def get_imagenet(n_train: int = 1500, n_test: int = IMAGENET_TEST_SIZE,
                 seed: int = 7) -> tuple[Dataset, Dataset]:
    """(train, test) synthetic-ImageNet datasets (memoized per process)."""
    (x_tr, y_tr), (x_te, y_te) = load_synth_imagenet(n_train, n_test, seed)
    return Dataset(x_tr, y_tr), Dataset(x_te, y_te)


def _train(model, train: Dataset, learning_rate: float, epochs: int,
           seed: int) -> None:
    trainer = nn.Trainer(nn.Adam(learning_rate), seed=seed)
    trainer.fit(model, train.x, train.y, epochs=epochs, batch_size=64)


def trained_lenet(seed: int = 0, epochs: int = 6, force: bool = False):
    """The binary LeNet of the Fig. 4 experiments, trained and cached."""
    model = build_lenet(seed=seed)
    path = cache_dir() / f"lenet_s{seed}_e{epochs}.npz"
    if path.exists() and not force:
        model.load_weights(path)
        return model
    train, _ = get_mnist()
    _train(model, train, learning_rate=2e-3, epochs=epochs, seed=seed)
    model.save_weights(path)
    return model


def trained_zoo_model(name: str, seed: int = 0, force: bool = False):
    """A Table-II architecture trained on synthetic ImageNet, cached."""
    if name not in MODEL_BUILDERS:
        raise ValueError(f"unknown zoo model {name!r}")
    model = build_model(name, seed=seed)
    learning_rate, epochs = _TRAIN_SCHEDULE.get(name, _TRAIN_SCHEDULE["default"])
    path = cache_dir() / f"zoo_{name}_s{seed}_e{epochs}.npz"
    if path.exists() and not force:
        model.load_weights(path)
        return model
    train, _ = get_imagenet()
    _train(model, train, learning_rate, epochs, seed=seed)
    model.save_weights(path)
    return model
